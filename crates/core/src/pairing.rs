//! The pairing bijections used by `UniversalRV` to enumerate parameter
//! triples.
//!
//! Section 3.2 of the paper: `f : N⁺ × N⁺ → N⁺`,
//! `f(x, y) = x + (x + y − 1)(x + y − 2)/2` (the Cantor diagonal pairing on
//! positive integers) and `g(x, y, z) = f(f(x, y), z)`, both bijections.
//! `UniversalRV` runs phase `P = 1, 2, ...` with parameters
//! `(n, d, δ) = g⁻¹(P)`.
//!
//! Note that the components range over *positive* integers; in particular the
//! delay guess of a phase is always `δ′ ≥ 1`.  This is harmless: a feasible
//! STIC with actual delay `0` necessarily has nonsymmetric initial positions
//! (Corollary 3.1), and the `AsymmRV` part of a phase works for every actual
//! delay not exceeding its budget.

/// Cantor pairing on positive integers: `f(x, y) = x + (x+y−1)(x+y−2)/2`.
pub fn f(x: u64, y: u64) -> u64 {
    debug_assert!(x >= 1 && y >= 1, "f is defined on positive integers");
    let s = x + y;
    x + (s - 1) * (s - 2) / 2
}

/// Inverse of [`f`]: the unique `(x, y)` with `f(x, y) == z` (for `z ≥ 1`).
pub fn f_inv(z: u64) -> (u64, u64) {
    debug_assert!(z >= 1);
    // find the largest s >= 2 with (s-1)(s-2)/2 < z, i.e. the diagonal containing z
    let mut s = 2u64;
    // grow geometrically then binary search to keep this O(log z)
    while (s - 1) * (s - 2) / 2 < z {
        s *= 2;
    }
    let (mut lo, mut hi) = (2u64, s);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if (mid - 1) * (mid - 2) / 2 < z {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let s = lo;
    let x = z - (s - 1) * (s - 2) / 2;
    let y = s - x;
    (x, y)
}

/// The triple pairing `g(x, y, z) = f(f(x, y), z)`.
pub fn g(x: u64, y: u64, z: u64) -> u64 {
    f(f(x, y), z)
}

/// Inverse of [`g`].
pub fn g_inv(p: u64) -> (u64, u64, u64) {
    let (w, z) = f_inv(p);
    let (x, y) = f_inv(w);
    (x, y, z)
}

/// The phase of `UniversalRV` in which the parameter triple `(n, d, δ)` is
/// tried (phases are 1-based).
pub fn phase_of(n: usize, d: usize, delta: u64) -> u64 {
    g(n as u64, d as u64, delta)
}

/// The parameter triple `(n, d, δ)` of a phase.
pub fn params_of_phase(phase: u64) -> (usize, usize, u64) {
    let (n, d, delta) = g_inv(phase);
    (n as usize, d as usize, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_matches_the_paper_formula_on_small_values() {
        assert_eq!(f(1, 1), 1);
        assert_eq!(f(1, 2), 2);
        assert_eq!(f(2, 1), 3);
        assert_eq!(f(1, 3), 4);
        assert_eq!(f(2, 2), 5);
        assert_eq!(f(3, 1), 6);
    }

    #[test]
    fn f_is_a_bijection_on_an_initial_segment() {
        // every value 1..=5050 is hit exactly once by pairs with x + y <= 101
        let mut seen = vec![false; 5051];
        for x in 1..=100u64 {
            for y in 1..=(101 - x) {
                let z = f(x, y);
                assert!((1..=5050).contains(&z), "f({x},{y}) = {z}");
                assert!(!seen[z as usize], "collision at {z}");
                seen[z as usize] = true;
            }
        }
        assert!(seen[1..].iter().all(|&b| b));
    }

    #[test]
    fn f_inv_round_trips() {
        for z in 1..=10_000u64 {
            let (x, y) = f_inv(z);
            assert!(x >= 1 && y >= 1);
            assert_eq!(f(x, y), z, "z = {z} gave ({x},{y})");
        }
    }

    #[test]
    fn g_inv_round_trips() {
        for p in 1..=5_000u64 {
            let (x, y, z) = g_inv(p);
            assert_eq!(g(x, y, z), p);
        }
        for x in 1..=12u64 {
            for y in 1..=12 {
                for z in 1..=12 {
                    assert_eq!(g_inv(g(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn phase_helpers_are_inverse_of_each_other() {
        let p = phase_of(5, 2, 3);
        assert_eq!(params_of_phase(p), (5, 2, 3));
        // the paper's growth estimate: g(n, d, δ) = O(n⁴ + d⁴ + δ²)
        assert!(phase_of(10, 9, 10) < 100_000);
    }

    #[test]
    fn f_inv_handles_large_inputs() {
        let z = 10_000_000_000u64;
        let (x, y) = f_inv(z);
        assert_eq!(f(x, y), z);
    }
}
