//! Truncated views `V(v, G)` and their canonical encodings.
//!
//! The *view* from `v` in `G` (Section 2 of the paper, following
//! Yamashita–Kameda) is the infinite tree of all walks in `G` starting from
//! `v`, coded as sequences of port numbers.  Two nodes are *symmetric* iff
//! their views are equal.  By the classical result of Norris, the infinite
//! views of two nodes of an `n`-node graph are equal iff their truncations to
//! depth `n - 1` are equal, so all computations here work with truncated
//! views.
//!
//! Truncated views can be exponentially large in the depth, so this module is
//! intended for small graphs and for cross-checking the polynomial-time
//! partition refinement of [`crate::symmetry`]; production code should prefer
//! the latter.

use crate::graph::{NodeId, Port, PortGraph};

/// A truncated view: a rooted tree in which every non-leaf node carries its
/// degree and, for every port `p` of the original node, the child reached by
/// leaving through `p` together with the entry port at that child.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct View {
    /// Degree of the node this (sub)view is rooted at.
    pub degree: usize,
    /// `children[p] = (entry_port, subview)`, one entry per port, empty when
    /// the view is truncated at this level.
    pub children: Vec<(Port, View)>,
}

impl View {
    /// Depth of the truncation (length of the longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        self.children.iter().map(|(_, c)| 1 + c.depth()).max().unwrap_or(0)
    }

    /// Number of tree nodes in the truncated view (including the root).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }

    /// Deterministic, injective byte encoding of the truncated view.  Two
    /// truncated views are equal iff their encodings are equal, so the
    /// encoding can be used as a canonical label.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size() * 4);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(b'(');
        push_usize(out, self.degree);
        for (in_port, child) in &self.children {
            out.push(b'[');
            push_usize(out, *in_port);
            child.encode_into(out);
            out.push(b']');
        }
        out.push(b')');
    }

    /// A 64-bit FNV-1a hash of the canonical encoding.  Collisions are
    /// possible in principle; use [`View::canonical_bytes`] or direct `==`
    /// when exactness matters.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

fn push_usize(out: &mut Vec<u8>, x: usize) {
    // small decimal encoding with a terminator keeps the encoding injective
    out.extend_from_slice(x.to_string().as_bytes());
    out.push(b',');
}

/// Compute the view from `v` truncated to `depth`.
pub fn truncated_view(g: &PortGraph, v: NodeId, depth: usize) -> View {
    let degree = g.degree(v);
    if depth == 0 {
        return View { degree, children: Vec::new() };
    }
    let children = (0..degree)
        .map(|p| {
            let (w, q) = g.succ(v, p);
            (q, truncated_view(g, w, depth - 1))
        })
        .collect();
    View { degree, children }
}

/// Compare the views of `u` and `v` truncated to `depth` without
/// materialising them (early exit on the first difference).
pub fn views_equal_to_depth(g: &PortGraph, u: NodeId, v: NodeId, depth: usize) -> bool {
    if g.degree(u) != g.degree(v) {
        return false;
    }
    if depth == 0 {
        return true;
    }
    for p in 0..g.degree(u) {
        let (u2, qu) = g.succ(u, p);
        let (v2, qv) = g.succ(v, p);
        if qu != qv {
            return false;
        }
        if !views_equal_to_depth(g, u2, v2, depth - 1) {
            return false;
        }
    }
    true
}

/// `true` iff `u` and `v` are symmetric, decided through view comparison at
/// the Norris depth `n - 1`.  Exponential in the worst case; prefer
/// [`crate::symmetry::OrbitPartition`] for anything but small graphs.
pub fn symmetric_by_views(g: &PortGraph, u: NodeId, v: NodeId) -> bool {
    views_equal_to_depth(g, u, v, g.num_nodes().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{oriented_ring, path, star};

    #[test]
    fn truncated_view_shape_on_a_ring() {
        let g = oriented_ring(5).unwrap();
        let v = truncated_view(&g, 0, 2);
        assert_eq!(v.degree, 2);
        assert_eq!(v.depth(), 2);
        // binary branching: 1 + 2 + 4 nodes
        assert_eq!(v.size(), 7);
    }

    #[test]
    fn all_nodes_of_an_oriented_ring_are_symmetric() {
        let g = oriented_ring(6).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert!(symmetric_by_views(&g, u, v), "{u} and {v} should be symmetric");
            }
        }
    }

    #[test]
    fn path_endpoints_are_symmetric_only_when_ports_mirror() {
        // path 0-1-2 built by the generator: ports at node 1 are 0 -> node 0, 1 -> node 2,
        // so the two leaves see different entry ports at depth 1 and are NOT symmetric.
        let g = path(3).unwrap();
        assert!(!symmetric_by_views(&g, 0, 2));
        assert!(!symmetric_by_views(&g, 0, 1));
    }

    #[test]
    fn star_leaves_are_pairwise_nonsymmetric_under_distinct_center_ports() {
        let g = star(4).unwrap(); // center 0, leaves 1..=4
                                  // every leaf is attached to a distinct port of the center, so the
                                  // depth-2 views differ
        for a in 1..5 {
            for b in 1..5 {
                if a != b {
                    assert!(!symmetric_by_views(&g, a, b));
                }
            }
        }
    }

    #[test]
    fn canonical_bytes_distinguish_views_and_match_equality() {
        let g = path(4).unwrap();
        let n = g.num_nodes();
        for u in g.nodes() {
            for v in g.nodes() {
                let vu = truncated_view(&g, u, n - 1);
                let vv = truncated_view(&g, v, n - 1);
                assert_eq!(vu == vv, vu.canonical_bytes() == vv.canonical_bytes());
                assert_eq!(vu == vv, views_equal_to_depth(&g, u, v, n - 1));
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_equality_compatible() {
        let g = oriented_ring(7).unwrap();
        let a = truncated_view(&g, 0, 6);
        let b = truncated_view(&g, 3, 6);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn depth_zero_view_records_only_the_degree() {
        let g = star(3).unwrap();
        let center = truncated_view(&g, 0, 0);
        assert_eq!(center.degree, 3);
        assert!(center.children.is_empty());
        assert_eq!(center.size(), 1);
        assert_eq!(center.depth(), 0);
    }
}
