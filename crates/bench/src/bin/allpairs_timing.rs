//! Emit `BENCH_allpairs.json`: wall-clock timings and speedups for the two
//! kernels this repo's perf trajectory tracks —
//!
//! 1. all-pairs `Shrink` on `oriented_torus(16, 16)`: the one-pass
//!    product-space engine versus the per-pair BFS baseline (measured on a
//!    pair sample and extrapolated linearly, because running the baseline on
//!    all 32 640 pairs takes minutes);
//! 2. a short-horizon STIC sweep through the lockstep engine versus the
//!    threaded streaming engine.
//!
//! Usage: `cargo run --release -p anonrv-bench --bin allpairs_timing
//! [output.json]` (default output: `BENCH_allpairs.json`).

use std::time::Instant;

use anonrv_graph::generators::{oriented_ring, oriented_torus};
use anonrv_graph::pairspace::ShrinkEngine;
use anonrv_graph::shrink::{shrink_all_symmetric_pairs, shrink_reference_bfs};
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_sim::{simulate_with, EngineConfig, Navigator, Round, Stic, Stop};

/// Median wall time of `runs` executions, in seconds.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn walker(nav: &mut dyn Navigator) -> Result<(), Stop> {
    let mut state = 0x9e3779b97f4a7c15u64;
    loop {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        nav.move_via((state >> 33) as usize % nav.degree())?;
    }
}

fn sweep(g: &anonrv_graph::PortGraph, config: impl Fn(Round) -> EngineConfig) -> usize {
    let n = g.num_nodes();
    let mut met = 0usize;
    for u in 0..8usize {
        for delta in 0..8u32 {
            let stic = Stic::new(u % n, (u * 5 + 3) % n, delta as Round);
            met += usize::from(simulate_with(g, &walker, &walker, &stic, config(200)).met());
        }
    }
    met
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_allpairs.json".to_string());

    // --- kernel 1: all-pairs Shrink on oriented_torus(16, 16) ---
    let torus = oriented_torus(16, 16).unwrap();
    let partition = OrbitPartition::compute(&torus);
    let symmetric_pairs = partition.symmetric_pairs();
    let num_pairs = symmetric_pairs.len();

    let engine_all_pairs_s = time_median(5, || shrink_all_symmetric_pairs(&torus));
    let engine_sweep_only_s = {
        let engine = ShrinkEngine::new(&torus);
        time_median(5, || engine.all_pairs())
    };

    const BASELINE_SAMPLE: usize = 32;
    let sample: Vec<(usize, usize)> =
        symmetric_pairs.iter().copied().take(BASELINE_SAMPLE).collect();
    let baseline_sample_s = time_median(3, || {
        sample.iter().map(|&(u, v)| shrink_reference_bfs(&torus, u, v)).sum::<usize>()
    });
    let baseline_est_total_s = baseline_sample_s * num_pairs as f64 / sample.len() as f64;
    let allpairs_speedup = baseline_est_total_s / engine_all_pairs_s;

    // --- kernel 2: short-horizon STIC sweep, lockstep vs streaming ---
    let ring = oriented_ring(32).unwrap();
    let lockstep_s = time_median(5, || sweep(&ring, EngineConfig::lockstep));
    let streaming_s = time_median(5, || sweep(&ring, EngineConfig::streaming));
    let lockstep_speedup = streaming_s / lockstep_s;

    let json = format!(
        "{{\n  \"instance\": \"oriented_torus(16, 16)\",\n  \"symmetric_pairs\": {num_pairs},\n  \
         \"engine_all_symmetric_pairs_seconds\": {engine_all_pairs_s:.6},\n  \
         \"engine_all_pairs_sweep_seconds\": {engine_sweep_only_s:.6},\n  \
         \"baseline_sample_pairs\": {BASELINE_SAMPLE},\n  \
         \"baseline_sample_seconds\": {baseline_sample_s:.6},\n  \
         \"baseline_estimated_total_seconds\": {baseline_est_total_s:.6},\n  \
         \"allpairs_speedup\": {allpairs_speedup:.1},\n  \
         \"sweep_instance\": \"oriented_ring(32), 64 STICs, horizon 200\",\n  \
         \"lockstep_sweep_seconds\": {lockstep_s:.6},\n  \
         \"streaming_sweep_seconds\": {streaming_s:.6},\n  \
         \"lockstep_speedup\": {lockstep_speedup:.1}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
