//! Property and differential tests for the pair-orbit sweep planner: the
//! planner's soundness assumption is that orbit-equivalent ordered pairs
//! produce **bit-identical** [`SimOutcome`](anonrv_sim::SimOutcome)s (up to
//! the witnessing automorphism on the meeting node) under *every* program,
//! delay and horizon, across all three simulation engines — and that a
//! planned sweep therefore answers every member query exactly as direct
//! simulation would.

use proptest::prelude::*;

use anonrv_graph::generators::{
    circulant, hypercube, lollipop, oriented_ring, oriented_torus, qh_hat, random_connected,
    symmetric_double_tree,
};
use anonrv_graph::PortGraph;
use anonrv_plan::{PairOrbits, PlannedSweep, SweepPlan};
use anonrv_sim::{
    simulate_with, AgentProgram, EngineConfig, Navigator, Round, SimOutcome, Stic, Stop,
};

/// Deterministic scripted agent (same idiom as the engine property tests):
/// a seeded LCG decides each round between moving through a pseudo-random
/// port and short waits, optionally terminating.
struct ScriptedWalker {
    seed: u64,
    lifetime: Option<u64>,
}

impl AgentProgram for ScriptedWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        let mut actions = 0u64;
        loop {
            if let Some(lifetime) = self.lifetime {
                if actions >= lifetime {
                    return Ok(());
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 9 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
            actions += 1;
        }
    }
}

/// Map the meeting node of `outcome` through `f`, leaving every other field
/// untouched (the only field an automorphism may change).
fn map_node(mut outcome: SimOutcome, f: impl Fn(usize) -> usize) -> SimOutcome {
    if let Some(m) = outcome.meeting.as_mut() {
        m.node = f(m.node);
    }
    outcome
}

/// The acceptance families: torus, ring, qhat, random, lollipop (plus a few
/// more shapes for coverage).
fn differential_families() -> Vec<(&'static str, PortGraph)> {
    vec![
        ("torus-3x4", oriented_torus(3, 4).unwrap()),
        ("ring-8", oriented_ring(8).unwrap()),
        ("qhat-2", qh_hat(2).unwrap().graph),
        ("random-9-4-s2", random_connected(9, 4, 2).unwrap()),
        ("lollipop-4-3", lollipop(4, 3).unwrap()),
        ("hypercube-3", hypercube(3).unwrap()),
        ("circulant-10(1,3)", circulant(10, &[1, 3]).unwrap()),
        ("double-tree-2-2", symmetric_double_tree(2, 2).unwrap().0),
    ]
}

/// Exhaustive planned-vs-unplanned differential: every ordered pair × every
/// delay of the grid, planned outcomes must equal direct batch-engine
/// simulation bit-for-bit.
fn exhaustive_differential(g: &PortGraph, label: &str, deltas: &[Round], horizon: Round) {
    let program = ScriptedWalker { seed: 0xC0FFEE, lifetime: None };
    let planned = PlannedSweep::new(g, &program, EngineConfig::batch(horizon));
    let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.to_vec(), horizon);
    let outcomes = planned.run(&plan);
    for u in g.nodes() {
        for v in g.nodes() {
            for (di, &delta) in deltas.iter().enumerate() {
                let direct = planned.engine().simulate(&Stic::new(u, v, delta));
                assert_eq!(
                    outcomes.get(u, v, di),
                    direct,
                    "{label}: planned != direct on ({u}, {v}) delta {delta}"
                );
            }
        }
    }
}

#[test]
fn planned_sweeps_are_bit_identical_to_unplanned_on_every_family() {
    for (label, g) in differential_families() {
        exhaustive_differential(&g, label, &[0, 1, 2, 5], 48);
    }
}

#[test]
fn exhaustive_differential_on_torus_3x4_and_qhat_4() {
    // the two instances the issue pins: a vertex-transitive torus and the
    // paper's 4-regular lower-bound graph Q̂_4 (161 nodes)
    exhaustive_differential(&oriented_torus(3, 4).unwrap(), "torus-3x4", &[0, 1, 2, 3, 4], 96);
    exhaustive_differential(&qh_hat(4).unwrap().graph, "qhat-4", &[0, 2], 40);
}

#[test]
fn orbit_equivalent_pairs_are_bit_identical_across_all_three_engines() {
    // the planner's soundness assumption, checked against every engine: for
    // pairs in one orbit, outcomes agree modulo the witnessing automorphism
    // on the meeting node
    let programs: Vec<ScriptedWalker> = vec![
        ScriptedWalker { seed: 0x5EED, lifetime: None },
        ScriptedWalker { seed: 0xBEE, lifetime: Some(11) },
    ];
    for (label, g) in differential_families() {
        let orbits = PairOrbits::compute(&g);
        for program in &programs {
            for class in 0..orbits.num_pair_classes() {
                let (r, c) = orbits.representative(class);
                for delta in [0 as Round, 2] {
                    let horizon = 40;
                    let rep_stic = Stic::new(r, c, delta);
                    for config in [
                        EngineConfig::streaming(horizon),
                        EngineConfig::lockstep(horizon),
                        EngineConfig::batch(horizon),
                    ] {
                        let rep = simulate_with(&g, program, program, &rep_stic, config);
                        for (u, v) in orbits.members(class) {
                            let member = simulate_with(
                                &g,
                                program,
                                program,
                                &Stic::new(u, v, delta),
                                config,
                            );
                            // pull the member's meeting node into the
                            // canonical world before comparing
                            let canonicalised = map_node(member, |x| orbits.to_canonical(u, x));
                            assert_eq!(
                                canonicalised, rep,
                                "{label}: class {class} member ({u}, {v}) delta {delta} \
                                 mode {:?} diverges from its representative ({r}, {c})",
                                config.mode
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn validate_mode_passes_on_symmetric_and_rigid_families() {
    let program = ScriptedWalker { seed: 0xABCD, lifetime: None };
    for (label, g) in differential_families() {
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1, 3], 64);
        let report = planned.validate_sample(&plan, 5);
        assert!(
            report.is_valid(),
            "{label}: validation mismatch {:?} (checked {})",
            report.first_mismatch,
            report.checked
        );
    }
}

/// The executable form of the design note in `anonrv_plan`: common-port
/// pair-graph structure (node-difference, Shrink) cannot distinguish
/// `(0, 2)` from `(0, 6)` on the oriented 8-ring, but their outcomes differ
/// — so any sound planning partition must separate them.
#[test]
fn time_shifted_executions_distinguish_pairs_with_equal_shrink() {
    let g = oriented_ring(8).unwrap();
    let clockwise = |nav: &mut dyn Navigator| -> Result<(), Stop> {
        loop {
            nav.move_via(0)?;
        }
    };
    let config = EngineConfig::lockstep(64);
    let met_02 = simulate_with(&g, &clockwise, &clockwise, &Stic::new(0, 2, 2), config).met();
    let met_06 = simulate_with(&g, &clockwise, &clockwise, &Stic::new(0, 6, 2), config).met();
    assert!(met_02, "delay 2 lets the earlier agent catch a pair at +2");
    assert!(!met_06, "the -2 pair stays antipodal-shifted forever");
    assert!(!PairOrbits::compute(&g).are_equivalent(0, 2, 0, 6));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised differential: arbitrary scripted programs, delays and
    /// horizons on a symmetric and a rigid family — planned member answers
    /// equal direct simulation bit-for-bit.
    #[test]
    fn planned_member_queries_match_direct_simulation(
        seed in 0u64..1_000_000,
        lifetime_sel in 0u64..31,
        delta in 0u64..20,
        horizon in 1u64..120,
        u in 0usize..12,
        v in 0usize..12,
    ) {
        let lifetime = if lifetime_sel == 0 { None } else { Some(lifetime_sel) };
        let program = ScriptedWalker { seed, lifetime };
        for g in [oriented_torus(3, 4).unwrap(), random_connected(12, 6, seed ^ 7).unwrap()] {
            let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(horizon as Round));
            let stic = Stic::new(u % g.num_nodes(), v % g.num_nodes(), delta as Round);
            let direct = planned.engine().simulate(&stic);
            prop_assert_eq!(planned.simulate(&stic), direct);
        }
    }
}
