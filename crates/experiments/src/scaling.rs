//! EXP-P41 — Proposition 4.1: the time used by `UniversalRV` grows like
//! `O(n + δ)^O(n + δ)`.
//!
//! The experiment runs `UniversalRV` to rendezvous on families of symmetric
//! STICs of increasing size and delay — oriented rings plus circulants
//! `C_n(s_1, ..., s_k)` for scenario diversity (higher degree, smaller
//! diameter, same full symmetry) — starting nodes at distance
//! `d = Shrink`, `δ = d`, plus a delay sweep at fixed `n`.  For every point
//! it reports
//!
//! * the measured rendezvous time (rounds since the later agent's start),
//! * the index of the resolving phase `g(n, d, δ)` and the paper's phase-count
//!   estimate `O(n⁴ + δ²)`,
//! * the analytic completion bound our implementation guarantees, and
//! * the paper's envelope `(n + δ)^(n + δ)`.
//!
//! The expected *shape* is super-polynomial growth of both the measured time
//! and the bound, while staying below the envelope — not a match of absolute
//! constants (the paper gives none).

use anonrv_core::bounds::proposition41_envelope;
use anonrv_core::label::TrailSignature;
use anonrv_core::pairing::phase_of;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::generators::{circulant, oriented_ring};
use anonrv_graph::shrink::shrink;
use anonrv_graph::PortGraph;
use anonrv_sim::{EngineConfig, Round, Stic};
use anonrv_store::SweepSession;
use anonrv_uxs::{LengthRule, PseudorandomUxs};

use crate::report::{compression_note, fmt_opt_rounds, fmt_rounds, PlanCompression, Table};
use crate::runner::distinct_in_order;

/// The graph family a scaling point runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingFamily {
    /// The oriented ring (= `circulant(n, [1])`).
    Ring,
    /// A circulant `C_n(s_1, ..., s_k)` with the given shifts.
    Circulant(Vec<usize>),
}

impl ScalingFamily {
    /// Instance label for tables (e.g. `"ring-6"`, `"circulant-8(1,2)"`).
    pub fn label(&self, n: usize) -> String {
        match self {
            ScalingFamily::Ring => format!("ring-{n}"),
            ScalingFamily::Circulant(shifts) => {
                let shifts: Vec<String> = shifts.iter().map(|s| s.to_string()).collect();
                format!("circulant-{n}({})", shifts.join(","))
            }
        }
    }

    /// Build the instance.
    pub fn build(&self, n: usize) -> PortGraph {
        match self {
            ScalingFamily::Ring => oriented_ring(n).expect("ring generation"),
            ScalingFamily::Circulant(shifts) => circulant(n, shifts).expect("circulant generation"),
        }
    }
}

/// One point of the scaling sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingPoint {
    /// Graph family of the instance.
    pub family: ScalingFamily,
    /// Instance size.
    pub n: usize,
    /// `Shrink` of the chosen starting pair.
    pub d: usize,
    /// Delay.
    pub delta: Round,
}

impl ScalingPoint {
    /// A ring point (the original sweep family).
    pub fn ring(n: usize, d: usize, delta: Round) -> Self {
        ScalingPoint { family: ScalingFamily::Ring, n, d, delta }
    }

    /// A circulant point.
    pub fn circulant(n: usize, shifts: &[usize], d: usize, delta: Round) -> Self {
        ScalingPoint { family: ScalingFamily::Circulant(shifts.to_vec()), n, d, delta }
    }
}

/// Configuration of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// The sweep points.
    pub points: Vec<ScalingPoint>,
    /// UXS length rule.
    pub uxs_rule: LengthRule,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            points: vec![
                ScalingPoint::ring(4, 2, 2),
                ScalingPoint::ring(5, 2, 2),
                ScalingPoint::ring(6, 2, 2),
                ScalingPoint::ring(4, 2, 3),
                ScalingPoint::circulant(6, &[1, 2], 2, 2),
            ],
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

impl ScalingConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        ScalingConfig {
            points: vec![
                ScalingPoint::ring(4, 2, 2),
                ScalingPoint::ring(5, 2, 2),
                ScalingPoint::ring(6, 2, 2),
                ScalingPoint::ring(7, 2, 2),
                ScalingPoint::ring(8, 2, 2),
                ScalingPoint::ring(4, 2, 3),
                ScalingPoint::ring(4, 2, 4),
                ScalingPoint::ring(6, 3, 3),
                ScalingPoint::circulant(6, &[1, 2], 2, 2),
                ScalingPoint::circulant(7, &[1, 2], 2, 2),
                ScalingPoint::circulant(8, &[1, 3], 2, 2),
            ],
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

/// One measured row of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingRecord {
    /// The sweep point.
    pub point: ScalingPoint,
    /// Measured rendezvous time.
    pub time: Option<Round>,
    /// Index of the resolving phase `g(n, d, δ)`.
    pub resolving_phase: u64,
    /// The paper's phase-count shape `n⁴ + δ²` evaluated at the point.
    pub phase_shape: u64,
    /// Our implementation's completion bound (the simulation horizon).
    pub completion_bound: Round,
    /// The paper's `(n + δ)^(n + δ)` envelope.
    pub envelope: Round,
}

/// Run the sweep and return the measured records (in `config.points`
/// order).
pub fn collect(config: &ScalingConfig) -> Vec<ScalingRecord> {
    collect_with_stats(config).0
}

/// Run the sweep and return the measured records plus the per-instance
/// pair-orbit planning statistics.
///
/// `UniversalRV` takes no parameters, so all points sharing one instance
/// run the same program on the same graph: each `(family, n)` gets one
/// in-memory [`SweepSession`] at the largest completion bound among its
/// points — the starting pair is canonicalised onto its pair-orbit
/// representative, the trajectory cache records each canonical start node
/// once, and every point is answered at its own bound.
pub fn collect_with_stats(config: &ScalingConfig) -> (Vec<ScalingRecord>, Vec<PlanCompression>) {
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let mut records: Vec<Option<ScalingRecord>> = vec![None; config.points.len()];
    let mut stats = Vec::new();
    for instance in distinct_in_order(config.points.iter().map(|p| (p.family.clone(), p.n))) {
        let (family, n) = &instance;
        let g = family.build(*n);
        let group: Vec<usize> = (0..config.points.len())
            .filter(|&i| (&config.points[i].family, config.points[i].n) == (family, *n))
            .collect();
        let queries: Vec<(Stic, Round)> = group
            .iter()
            .map(|&i| {
                let point = &config.points[i];
                // the starting pair: node 0 and the smallest node at
                // Shrink = d (on the ring that is node d itself)
                let v =
                    g.nodes().find(|&v| shrink(&g, 0, v) == Some(point.d)).unwrap_or_else(|| {
                        panic!("{} has no pair with Shrink {}", family.label(*n), point.d)
                    });
                let horizon = algo.completion_horizon(*n, point.d, point.delta);
                (Stic::new(0, v, point.delta), horizon)
            })
            .collect();
        let max_horizon = queries.iter().map(|&(_, h)| h).max().expect("size groups are non-empty");
        let mut sweep = SweepSession::in_memory(&g, &algo, EngineConfig::with_horizon(max_horizon));
        let outcomes = sweep.simulate_cases(&queries);
        let mut instance =
            PlanCompression::new(family.label(*n), n * n, sweep.orbits().num_pair_classes());
        instance.absorb(&sweep.stats());
        stats.push(instance);
        for (&i, (&(_, horizon), outcome)) in group.iter().zip(queries.iter().zip(outcomes)) {
            let point = config.points[i].clone();
            let (n, d, delta) = (point.n, point.d, point.delta);
            records[i] = Some(ScalingRecord {
                point,
                time: outcome.rendezvous_time(),
                resolving_phase: phase_of(n, d, delta.min(u64::MAX as Round) as u64),
                phase_shape: (n as u64).pow(4) + (delta as u64).pow(2),
                completion_bound: horizon,
                envelope: proposition41_envelope(n, delta),
            });
        }
    }
    (records.into_iter().map(|r| r.expect("every point is simulated")).collect(), stats)
}

/// Run the experiment as a report table.
pub fn run(config: &ScalingConfig) -> Table {
    let (records, stats) = collect_with_stats(config);
    let mut table = Table::new(
        "EXP-P41",
        "UniversalRV total time versus (n, delta) on oriented rings and circulants (Proposition 4.1)",
        &[
            "instance",
            "n",
            "d",
            "delta",
            "measured time",
            "resolving phase g(n,d,delta)",
            "n^4 + delta^2",
            "completion bound",
            "envelope (n+delta)^(n+delta)",
        ],
    );
    for r in &records {
        table.push_row([
            r.point.family.label(r.point.n),
            r.point.n.to_string(),
            r.point.d.to_string(),
            r.point.delta.to_string(),
            fmt_opt_rounds(r.time),
            r.resolving_phase.to_string(),
            r.phase_shape.to_string(),
            fmt_rounds(r.completion_bound),
            fmt_rounds(r.envelope),
        ]);
    }
    table.push_note(
        "Paper: the number of phases before rendezvous is O(n^4 + delta^2) and the total time is \
         O(n + delta)^O(n + delta); the expected shape is measured time and completion bound \
         growing super-polynomially with n + delta while every measurement stays at or below the \
         completion bound.",
    );
    table.push_note(compression_note(&stats));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalingConfig {
        ScalingConfig {
            points: vec![
                ScalingPoint::ring(4, 2, 2),
                ScalingPoint::ring(5, 2, 2),
                ScalingPoint::ring(4, 2, 3),
                // C_5(1, 2) is K_5: every pair has Shrink 1
                ScalingPoint::circulant(5, &[1, 2], 1, 1),
            ],
            ..ScalingConfig::default()
        }
    }

    #[test]
    fn every_point_meets_below_its_completion_bound() {
        for r in collect(&tiny()) {
            let t = r.time.expect("feasible STIC must be solved");
            assert!(t <= r.completion_bound, "{r:?}");
            assert!(
                r.resolving_phase as u128 <= r.phase_shape as u128 * 4,
                "the resolving phase should respect the O(n^4 + delta^2) shape: {r:?}"
            );
        }
    }

    #[test]
    fn time_grows_with_n_at_fixed_delta() {
        let records = collect(&tiny());
        let t4 = records[0].time.unwrap();
        let t5 = records[1].time.unwrap();
        assert!(t5 > t4, "measured time must grow with n (t4 = {t4}, t5 = {t5})");
        // and with the delay at fixed n
        let t4_d3 = records[2].time.unwrap();
        assert!(t4_d3 > t4, "measured time must grow with the delay (t4 = {t4}, t4_d3 = {t4_d3})");
    }

    #[test]
    fn every_configured_point_has_a_pair_at_the_requested_shrink() {
        for config in [tiny(), ScalingConfig::default(), ScalingConfig::full()] {
            for point in &config.points {
                let g = point.family.build(point.n);
                let v = g.nodes().find(|&v| shrink(&g, 0, v) == Some(point.d));
                assert!(v.is_some(), "no pair at Shrink {} on {:?}", point.d, point.family);
            }
        }
    }

    #[test]
    fn circulant_labels_render() {
        assert_eq!(ScalingFamily::Ring.label(6), "ring-6");
        assert_eq!(ScalingFamily::Circulant(vec![1, 3]).label(8), "circulant-8(1,3)");
    }

    #[test]
    fn the_table_has_one_row_per_point() {
        let cfg = tiny();
        assert_eq!(run(&cfg).num_rows(), cfg.points.len());
    }
}
