//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` header),
//! integer-range / `collection::vec` / `option::of` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.  Each test
//! runs `cases` deterministic pseudo-random cases (seeded from the test
//! name, so failures are reproducible); assumption failures skip the case.
//! Shrinking is not implemented — the failing inputs are printed instead.

/// Runner configuration and error plumbing.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs: skip the case.
        Reject,
        /// An assertion failed: the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    /// Deterministic pseudo-random generator (splitmix64) used to sample
    /// strategies.  Seeded from the test name so every run of a given test
    /// sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from an arbitrary string (typically the test name).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then splitmix from there.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Something that can generate values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u128 as u64;
                    let offset = rng.below(width);
                    ((self.start as i128) + offset as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy yielding one fixed value (used for degenerate cases).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy generating vectors of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values sampled from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Some(inner)` half the time and `None` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` of values sampled from `inner` (50% `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// The usual import surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests.  Each test samples its arguments from the given
/// strategies `cases` times and runs the body; `prop_assert*` failures abort
/// the test with the case's inputs printed, `prop_assume!` skips the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest case {case} failed: {message}\n  inputs: {inputs}"
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_their_bounds(x in 3usize..10, y in -4i32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..5).contains(&y));
        }

        #[test]
        fn vec_and_option_strategies_compose(
            v in crate::collection::vec(0u64..7, 0..9),
            o in crate::option::of(1u8..3),
        ) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 7));
            if let Some(inner) = o {
                prop_assert!(inner == 1 || inner == 2);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let seq_a: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }
}
