//! In-process fault-injection tests: arm failpoints through
//! [`anonrv::store::fault::scoped`] and assert every degradation path the
//! failure model promises — supervised retries heal persist failures, torn
//! writes leave only reclaimable debris, unreadable frames degrade to
//! recompute without quarantining intact files, and stragglers are counted
//! without breaking convergence.  (Real process deaths are covered by the
//! `crash_recovery` harness; these tests stay in-process so they can
//! inspect reports and stats.)

use anonrv::graph::generators::oriented_torus;
use anonrv::plan::SweepPlan;
use anonrv::sim::{EngineConfig, Round, SweepWalker};
use anonrv::store::{
    fault, table_fingerprint, OutcomeProvenance, Store, SuperviseConfig, SweepSession,
};

const KEY: &str = "fault-walker-5eed";
const HORIZON: Round = 32;

fn walker() -> SweepWalker {
    SweepWalker { seed: 0x5EED }
}

/// Unique, self-deleting scratch directory per test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("anonrv-fault-injection-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn reference_fingerprint(g: &anonrv::graph::PortGraph, deltas: Vec<Round>) -> u64 {
    let program = walker();
    let mut session = SweepSession::in_memory(g, &program, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), deltas, HORIZON);
    table_fingerprint(session.run_plan(&plan).unwrap().0.table())
}

#[test]
fn injected_persist_failures_retry_until_the_table_matches_undisturbed() {
    let dir = TempDir::new("persist-retry");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let reference = reference_fingerprint(&g, vec![0, 1]);

    // the first shard persist dies; the supervisor's probe sees the gap
    // and re-runs exactly that slice
    let guard = fault::scoped("shard.persist=io-error:1");
    let config = SuperviseConfig {
        base_backoff: std::time::Duration::from_millis(1),
        ..SuperviseConfig::default()
    };
    let program = walker();
    let mut session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
    let (merged, report) = session.run_sharded_supervised(&plan, 2, config).unwrap();
    drop(guard);

    assert_eq!(report.retried, vec![0], "exactly the failed slice retries");
    assert_eq!(report.attempts, 3);
    assert_eq!(
        table_fingerprint(merged.table()),
        reference,
        "healed run diverged from the undisturbed table"
    );
}

#[test]
fn torn_writes_leave_only_reclaimable_debris_and_never_publish() {
    let dir = TempDir::new("torn-write");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let reference = reference_fingerprint(&g, vec![0, 1]);
    let program = walker();

    // every temp-file write persists only its first 57 bytes, then fails:
    // no artifact may ever be published from a torn buffer
    let guard = fault::scoped("store.write_tmp=torn-write-57");
    let mut session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
    let err = session.run_plan(&plan).unwrap_err();
    assert!(err.contains("injected"), "{err}");
    drop(guard);

    // the rename never ran: nothing under an artifact name, only torn temps
    let (tmps, frames): (Vec<_>, Vec<_>) = std::fs::read_dir(&dir.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .partition(|p| p.to_string_lossy().contains(".tmp"));
    assert!(!tmps.is_empty(), "torn writes must leave their temp debris");
    assert!(frames.is_empty(), "a torn buffer must never be published: {frames:?}");
    for tmp in &tmps {
        assert!(
            std::fs::metadata(tmp).unwrap().len() <= 57,
            "torn temp holds more than the injected prefix"
        );
    }

    // gc reclaims the debris, and a clean rerun converges
    store.gc_with_min_age(std::time::Duration::ZERO).unwrap();
    assert!(
        std::fs::read_dir(&dir.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .all(|e| !e.file_name().to_string_lossy().contains(".tmp")),
        "gc must reclaim torn temps"
    );
    let mut clean =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let (outcomes, _) = clean.run_plan(&plan).unwrap();
    assert_eq!(table_fingerprint(outcomes.table()), reference);
}

#[test]
fn unreadable_frames_degrade_to_recompute_without_quarantining_intact_files() {
    let dir = TempDir::new("read-error");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let program = walker();

    // populate a warm cache first
    let mut seed_session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(seed_session.orbits().clone(), vec![0, 1], HORIZON);
    let (seeded, prov) = seed_session.run_plan(&plan).unwrap();
    assert_eq!(prov, OutcomeProvenance::Cold);
    let reference = table_fingerprint(seeded.table());

    // a failing disk: every frame read errors.  Loads must degrade to a
    // miss (recompute), never to wrong data — and must not quarantine
    // files that are merely unreadable, not damaged.
    let guard = fault::scoped("store.read_frame=io-error");
    let mut session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
    let (recomputed, prov) = session.run_plan(&plan).unwrap();
    assert_eq!(prov, OutcomeProvenance::Cold, "unreadable frames must look like misses");
    assert_eq!(table_fingerprint(recomputed.table()), reference);
    drop(guard);

    assert_eq!(store.stats().unwrap().quarantined.files, 0, "intact files were quarantined");
    // with the fault gone the (rewritten) cache serves warm again
    let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let (_, prov) = warm.run_plan(&plan).unwrap();
    assert_eq!(prov, OutcomeProvenance::WarmExact);
}

#[test]
fn stragglers_past_the_deadline_are_counted_but_still_converge() {
    let dir = TempDir::new("straggler");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let reference = reference_fingerprint(&g, vec![0, 1]);
    let program = walker();

    // every slice dawdles past a 1 ms deadline; the supervisor counts the
    // stragglers (observationally — completed-late work is kept) and the
    // run still converges without retries
    let guard = fault::scoped("shard.execute=delay-30");
    let config = SuperviseConfig {
        shard_deadline: std::time::Duration::from_millis(1),
        base_backoff: std::time::Duration::from_millis(1),
        ..SuperviseConfig::default()
    };
    let mut session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
    let (merged, report) = session.run_sharded_supervised(&plan, 2, config).unwrap();
    drop(guard);

    assert_eq!(report.timed_out, 2, "both dawdling slices are counted");
    assert!(report.retried.is_empty(), "late is not failed: no retries");
    assert_eq!(table_fingerprint(merged.table()), reference);
}
