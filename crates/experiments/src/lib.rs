//! # anonrv-experiments
//!
//! Experiment harnesses that regenerate every table and figure of the
//! reproduction of *Using Time to Break Symmetry: Universal Deterministic
//! Anonymous Rendezvous* (Pelc & Yadav, SPAA 2019).
//!
//! The paper is a theory paper, so its "evaluation" is a set of lemmas,
//! theorems and one construction figure; every one of them is turned into an
//! executable experiment here (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for recorded results):
//!
//! | Experiment | Paper reference | Module |
//! |---|---|---|
//! | EXP-FIG1   | Figure 1 | [`fig1`] |
//! | EXP-SHRINK | Section 3 examples | [`shrink_exp`] |
//! | EXP-L31    | Lemma 3.1 | [`infeasible`] |
//! | EXP-L32    | Lemmas 3.2 / 3.3 | [`symm`] |
//! | EXP-P31    | Proposition 3.1 | [`asymm`] |
//! | EXP-T31    | Theorem 3.1 / Corollary 3.1 | [`universal`] |
//! | EXP-T41    | Theorem 4.1 | [`lower_bound_exp`] |
//! | EXP-P41    | Proposition 4.1 | [`scaling`] |
//! | EXP-RAND   | Conclusion (randomized baseline) | [`random_exp`] |
//! | EXP-OPEN   | Section 4 discussion (polynomial asymmetric-only algorithm) | [`open_problem`] |
//! | EXP-ABL    | DESIGN.md §4 substitutions | [`ablation`] |
//!
//! Each module exposes a `*Config` (with `Default` = quick and `full()` =
//! the EXPERIMENTS.md configuration), a `collect` function returning raw
//! records, and a `run` function returning printable [`report::Table`]s.
//! The binaries in `src/bin/` print them; the criterion benches in
//! `anonrv-bench` time their kernels.
//!
//! Parallelism (rayon) lives strictly in this layer: the paper's algorithms
//! themselves are sequential round-by-round agent programs.
//!
//! ## How the sweeps simulate
//!
//! `anonrv-sim` offers three bit-identical engines (streaming, lockstep,
//! batch) and `anonrv-plan` a symmetry-reduction layer on top; the sweeps
//! here pick per workload shape:
//!
//! * sweeps evaluating **many STICs of one `(graph, program)` pair** —
//!   [`symm`] (per `(Shrink, δ)` parameter group), [`asymm`] (per delay
//!   budget), [`universal`], [`infeasible`] and [`scaling`] (one parameterless
//!   `UniversalRV` per instance) — run **plan-then-execute** through one
//!   [`anonrv_plan::PlannedSweep`] per group: the instance's pair-orbit
//!   partition collapses view-equivalent `(pair, δ, horizon)` cases onto one
//!   representative each ([`runner::run_cases_planned`] /
//!   `simulate_many`), the underlying `TrajectoryCache` executes each
//!   canonical start node's deterministic walk exactly once, rayon fans out
//!   over the representative merges, and the (bit-identical) outcomes are
//!   broadcast back to every member case.  Each table reports the resulting
//!   compression as a note ([`report::compression_note`]).
//! * one-off simulations (single probes, heterogeneous per-case programs as
//!   in [`random_exp`] or [`lower_bound_exp`]) use [`anonrv_sim::simulate`],
//!   whose `Auto` mode picks lockstep for short horizons and streaming for
//!   astronomical ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod asymm;
pub mod fig1;
pub mod infeasible;
pub mod lower_bound_exp;
pub mod open_problem;
pub mod random_exp;
pub mod report;
pub mod runner;
pub mod scaling;
pub mod shrink_exp;
pub mod suite;
pub mod symm;
pub mod universal;

pub use report::{Report, Table};
pub use runner::{Aggregate, Case, RunRecord};
pub use suite::Scale;

/// Run every experiment in its quick (`false`) or full (`true`)
/// configuration and collect the tables in presentation order.
pub fn run_all(full: bool) -> Report {
    let mut report = Report::new();
    report.push(fig1::run(&if full { fig1::Fig1Config::full() } else { Default::default() }));
    report.push(shrink_exp::run(&if full {
        shrink_exp::ShrinkConfig::full()
    } else {
        Default::default()
    }));
    report.push(infeasible::run(&if full {
        infeasible::InfeasibleConfig::full()
    } else {
        Default::default()
    }));
    report.push(symm::run(&if full { symm::SymmConfig::full() } else { Default::default() }));
    report.push(asymm::run(&if full { asymm::AsymmConfig::full() } else { Default::default() }));
    report.push(universal::run(&if full {
        universal::UniversalConfig::full()
    } else {
        Default::default()
    }));
    report.push(lower_bound_exp::run(&if full {
        lower_bound_exp::LowerBoundConfig::full()
    } else {
        Default::default()
    }));
    report.push(scaling::run(&if full {
        scaling::ScalingConfig::full()
    } else {
        Default::default()
    }));
    report.push(random_exp::run(&if full {
        random_exp::RandomConfig::full()
    } else {
        Default::default()
    }));
    report.push(open_problem::run(&if full {
        open_problem::OpenProblemConfig::full()
    } else {
        Default::default()
    }));
    for table in
        ablation::run(&if full { ablation::AblationConfig::full() } else { Default::default() })
    {
        report.push(table);
    }
    report
}

#[cfg(test)]
mod tests {
    // `run_all` is exercised by the integration suite (tests/integration_experiments.rs);
    // the unit test here only checks the experiment id wiring.
    #[test]
    fn experiment_ids_are_unique() {
        let ids = [
            "EXP-FIG1",
            "EXP-SHRINK",
            "EXP-L31",
            "EXP-L32",
            "EXP-P31",
            "EXP-T31",
            "EXP-T41",
            "EXP-P41",
            "EXP-RAND",
            "EXP-OPEN",
            "EXP-ABL-UXS",
            "EXP-ABL-LABEL",
            "EXP-ABL-PAD",
        ];
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
