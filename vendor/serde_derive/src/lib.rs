//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace only derives `Serialize` / `Deserialize` for plain structs
//! with named fields, so the stand-in avoids `syn`/`quote` entirely: it walks
//! the raw `proc_macro::TokenStream` to find the struct name and its field
//! names, then emits impls of the sibling `serde` stand-in's `Serialize` /
//! `Deserialize` traits (which are JSON-`Value`-tree based rather than
//! visitor based).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type: its name and named fields, in order.
struct Struct {
    name: String,
    fields: Vec<String>,
}

/// Extract the struct name and named-field list from a derive input stream.
///
/// Panics (i.e. produces a compile error) on enums, tuple structs and unit
/// structs — the workspace does not derive serde traits for those.
fn parse_struct(input: TokenStream) -> Struct {
    let mut iter = input.into_iter();
    // Skip outer attributes, doc comments and visibility until `struct`.
    loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("the serde_derive stand-in only supports structs with named fields")
            }
            Some(_) => continue,
            None => panic!("derive input contains no `struct` item"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected a struct name, found {other:?}"),
    };
    // Find the brace-delimited field group (generic parameters, which the
    // workspace does not use on serialised types, would appear before it).
    let fields = loop {
        match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break parse_named_fields(group.stream());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("the serde_derive stand-in does not support tuple/unit structs")
            }
            Some(_) => continue,
            None => panic!("struct `{name}` has no named-field body"),
        }
    };
    Struct { name, fields }
}

/// Extract the field names from the token stream inside the struct braces.
///
/// Grammar handled: `(#[attr])* (pub (crate/super/...)?)? name : Type ,` —
/// commas inside angle brackets (`HashMap<K, V>`) are skipped by tracking the
/// `<`/`>` nesting depth (parenthesised and bracketed types are whole groups
/// and need no tracking).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'fields: loop {
        // Leading attributes and visibility.
        let name = loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    // consume the attribute group `[...]`
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // consume an optional `(crate)` restriction
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other:?}"),
            }
        };
        fields.push(name);
        // `:` then the type, up to a comma at angle-bracket depth 0.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0usize;
        loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => continue 'fields,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Derive the stand-in `serde::Serialize` (render into a JSON `Value` tree).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let mut entries = String::new();
    for field in &s.fields {
        entries.push_str(&format!(
            "({field:?}.to_string(), ::serde::Serialize::to_value(&self.{field})),"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{entries}])\n\
             }}\n\
         }}",
        name = s.name,
    );
    out.parse().expect("generated Serialize impl must parse")
}

/// Derive the stand-in `serde::Deserialize` (rebuild from a JSON `Value`
/// tree; missing members error except for `Option` fields, which default to
/// `None` via `Deserialize::missing`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let mut inits = String::new();
    for field in &s.fields {
        inits.push_str(&format!("{field}: ::serde::from_field(v, {field:?})?,"));
    }
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = s.name,
    );
    out.parse().expect("generated Deserialize impl must parse")
}
