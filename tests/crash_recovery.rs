//! Crash-recovery harness: the only honest test of crash safety is a real
//! dead process.  The driver test re-execs this binary as a child with an
//! `ANONRV_FAILPOINTS="<site>=abort"` failpoint armed at each store write
//! site in turn, lets the child `abort(2)` mid-write, and then asserts the
//! survivors recover completely:
//!
//! 1. [`Store::gc`] reclaims whatever debris the death left (orphaned temp
//!    files, stale locks) — nothing transient survives;
//! 2. a supervised re-run over the surviving artifacts converges to an
//!    outcome table **bit-identical** to an undisturbed in-memory run —
//!    reads of partial state degrade to recompute, never to wrong data.

use std::process::Command;

use anonrv::graph::generators::oriented_torus;
use anonrv::plan::SweepPlan;
use anonrv::sim::{EngineConfig, Round, SweepWalker};
use anonrv::store::{table_fingerprint, ShardSpec, Store, SuperviseConfig, SweepSession};

const KEY: &str = "crash-walker-5eed";
const HORIZON: Round = 32;

fn walker() -> SweepWalker {
    SweepWalker { seed: 0x5EED }
}

/// Child entry point: a plain 2-shard sweep against the directory named by
/// `ANONRV_CRASH_DIR`, dying at whatever failpoint the parent armed.  In a
/// normal test run (no environment) this is a no-op.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("ANONRV_CRASH_DIR") else { return };
    let g = oriented_torus(3, 3).unwrap();
    let program = walker();
    let store = Store::open(&dir).unwrap();
    let mut session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
    for index in 0..2 {
        let _ = session.run_shard(&plan, ShardSpec::new(2, index).unwrap());
    }
    let _ = session.merge_shards(&plan, 2);
}

#[test]
fn crashes_at_every_write_site_recover_to_a_bit_identical_table() {
    let exe = std::env::current_exe().unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let program = walker();

    // the undisturbed reference, computed once in memory
    let mut reference_session = SweepSession::in_memory(&g, &program, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(reference_session.orbits().clone(), vec![0, 1], HORIZON);
    let reference = table_fingerprint(reference_session.run_plan(&plan).unwrap().0.table());

    // one abort per write site, plus skip variants that let earlier writes
    // land so the death hits a *later* artifact (a partially populated
    // store is the harder recovery case)
    let sites = [
        "store.write_tmp=abort",
        "store.write_tmp=abort@2",
        "store.rename=abort",
        "lock.acquire=abort",
        "shard.persist=abort",
        "shard.persist=abort@1",
    ];
    for (i, failpoints) in sites.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("anonrv-crash-recovery-{i}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // run the child to its death mid-write
        let output = Command::new(&exe)
            .args(["crash_child", "--exact"])
            .env("ANONRV_CRASH_DIR", &dir)
            .env("ANONRV_FAILPOINTS", failpoints)
            .output()
            .unwrap();
        assert!(!output.status.success(), "{failpoints}: the armed abort must kill the child");

        // recovery, step 1: gc reclaims every transient the death left
        let store = Store::open(&dir).unwrap();
        store.gc_with_min_age(std::time::Duration::ZERO).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp") || n.ends_with(".lock"))
            .collect();
        assert!(leftovers.is_empty(), "{failpoints}: debris survived gc: {leftovers:?}");

        // recovery, step 2: a supervised re-run over the survivors fills
        // exactly the gaps and converges bit-identically
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
        let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
        let (merged, report) =
            session.run_sharded_supervised(&plan, 2, SuperviseConfig::default()).unwrap();
        assert_eq!(
            table_fingerprint(merged.table()),
            reference,
            "{failpoints}: recovery diverged from the undisturbed run"
        );
        assert!(
            report.attempts + report.already_present >= 2,
            "{failpoints}: unexpected report {report:?}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
