//! The on-disk frame and the primitive binary codec every store artifact
//! shares.
//!
//! Each cache file is one *frame*:
//!
//! ```text
//! magic "ANRVSTOR" (8) | format version u32 | kind u8 | reserved (11)
//! | payload length u64 | payload bytes
//! | FNV-1a-64 checksum of everything before it (u64)
//! ```
//!
//! All integers are little-endian.  The header is exactly 32 bytes, so a
//! payload offset that is a multiple of 16 is also a 16-aligned *file*
//! offset: the v3 payloads place their flat `u128`/`u64`/`u32` arrays on
//! 16-byte boundaries ([`Enc::align16`]/[`Dec::align16`]) and move them
//! with the bulk array codecs below — one `extend_from_slice`-style copy
//! per array instead of a per-element decode loop.  The frame gives every
//! artifact the same three integrity gates, checked in order on load:
//!
//! 1. **magic + version** — a file written by a different format revision is
//!    *invalidated* (treated as a miss, then overwritten by the recompute),
//!    never partially interpreted;
//! 2. **length** — a truncated or padded file can never cause a read past
//!    the payload;
//! 3. **checksum** — random corruption inside the payload is caught before
//!    any value is decoded.
//!
//! Beyond the frame, every payload embeds the *identity* of what it caches
//! (graph hash, program key, horizon, ...) and the loader verifies that
//! identity against the query — a filename-hash collision therefore degrades
//! to a miss, never to wrong data being served.  The codec is deliberately
//! hand-rolled: the store's value types live in `anonrv-sim` / `anonrv-plan`
//! (which stay serde-free), `u128` round counters need exact framing, and
//! the whole format fits in this one auditable module.

/// File magic: identifies an anonrv store artifact.
pub(crate) const MAGIC: [u8; 8] = *b"ANRVSTOR";

/// Current format version.  Bump on any layout change: old files then fail
/// the version gate and are transparently recomputed and rewritten.
/// Version 2: horizon-generic keying — timelines carry a per-entry recorded
/// horizon, outcome/shard payloads embed theirs after the (horizon-free)
/// plan identity.
/// Version 3: flat-array payloads — the header widens to 32 bytes so the
/// payload starts 16-aligned, timeline entries store their segment and
/// occupancy arrays as alignment-padded struct-of-arrays blocks (decoded by
/// one bulk copy each, no per-segment loop or re-indexing on load), outcome
/// tables store one flat column per field, and timeline payloads carry an
/// up-front `(start, horizon)` directory so `stats` can peek recorded
/// horizons from a bounded prefix read.
/// Version 4: symbolic timeline artifacts — a new
/// [`Kind::SymbolicTimelines`] frame stores each start node's
/// `prefix · cycle^∞` decomposition as two v3-style flat-array blocks
/// (prefix and cycle columns).  No existing payload layout changed, so
/// readers accept [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]: v3
/// explicit frames keep loading verbatim.
/// Version 5: implicit symmetry groups — a new [`Kind::ImplicitOrbits`]
/// frame stores a *closed-form group descriptor* (family tag plus shape
/// parameters, a few dozen bytes) instead of `k·n` permutation words, so a
/// million-node torus persists its full automorphism group in O(1) space.
/// Loaders re-verify the descriptor against the graph on load (the
/// generators are re-checked port by port), exactly as explicit
/// permutation frames are re-verified.  Again no existing payload layout
/// changed: v3/v4 `orbits-` frames keep loading verbatim and remain the
/// fallback representation for graphs without a closed-form group.
pub(crate) const FORMAT_VERSION: u32 = 5;

/// Oldest format version readers still accept.  Versions 3 through 5 share
/// every payload layout (v4 and v5 only *add* artifact kinds), so a
/// v3 frame is served as-is rather than treated as stale.
pub(crate) const MIN_FORMAT_VERSION: u32 = 3;

/// Frame header size: magic(8) + version(4) + kind(1) + reserved(11) +
/// payload length(8).  The 11 reserved zero bytes pad the header to 32 so
/// 16-aligned payload offsets are 16-aligned file offsets.
pub(crate) const HEADER: usize = 32;

/// Alignment of the flat arrays inside v3 payloads (the widest element,
/// `u128`).
pub(crate) const ALIGN: usize = 16;

/// Artifact kind tags (one per payload layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Automorphism permutations (a [`anonrv_plan::PairOrbits`] seed).
    Orbits = 1,
    /// Recorded trajectory timelines of one `(graph, program, horizon)`.
    Timelines = 2,
    /// A full representative-outcome table of one executed sweep plan.
    Outcomes = 3,
    /// A partial outcome table produced by one shard of a sweep plan.
    Shard = 4,
    /// Symbolic (prefix + cycle) timelines of one `(graph, program)` pair —
    /// horizon-free: one detection serves *every* horizon, so these
    /// supersede explicit timeline recordings under the longest-wins rule.
    SymbolicTimelines = 5,
    /// An implicit symmetry-group descriptor (closed-form family + shape
    /// parameters) — the O(1)-space alternative to [`Kind::Orbits`] for
    /// graphs whose full automorphism group has a closed form.
    ImplicitOrbits = 6,
}

/// 64-bit FNV-1a over a byte slice (the frame checksum and the filename
/// key hash).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Append-only payload encoder.
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn u128(&mut self, x: u128) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Zero-pad to the next [`ALIGN`] boundary (relative to the payload
    /// start, which the 32-byte header keeps 16-aligned in the file).
    pub(crate) fn align16(&mut self) {
        let pad = self.buf.len().next_multiple_of(ALIGN) - self.buf.len();
        self.buf.resize(self.buf.len() + pad, 0);
    }

    /// An aligned flat `u128` array (no length prefix: callers frame counts
    /// themselves so directories stay at fixed offsets).
    pub(crate) fn u128_slice(&mut self, xs: &[u128]) {
        self.align16();
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// An aligned flat `u64` array.
    pub(crate) fn u64_slice(&mut self, xs: &[u64]) {
        self.align16();
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// An aligned flat `u32` array.
    pub(crate) fn u32_slice(&mut self, xs: &[u32]) {
        self.align16();
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// An aligned flat byte array.
    pub(crate) fn u8_slice(&mut self, xs: &[u8]) {
        self.align16();
        self.buf.extend_from_slice(xs);
    }

    /// The raw payload accumulated so far (fingerprinting without framing).
    pub(crate) fn payload(&self) -> &[u8] {
        &self.buf
    }

    /// Wrap the accumulated payload in a checksummed frame.
    pub(crate) fn into_frame(self, kind: Kind) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + self.buf.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(kind as u8);
        out.extend_from_slice(&[0u8; 11]);
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Bounds-checked payload decoder.  Every read returns `None` past the end,
/// so a malformed payload can never panic the loader.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// The inverse of [`Enc::u8`] — an unaligned scalar byte.  The v3
    /// payloads move byte *columns* with [`Dec::u8_vec`]; the symbolic
    /// entries read their tail-kind code through this.
    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    pub(crate) fn u128(&mut self) -> Option<u128> {
        self.take(16).map(|s| u128::from_le_bytes(s.try_into().expect("16 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Option<usize> {
        self.u64().and_then(|x| usize::try_from(x).ok())
    }

    /// A length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        // lengths beyond the remaining payload are malformed, not huge
        if len > self.data.len() - self.pos {
            return None;
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Skip the zero padding [`Enc::align16`] wrote.  Rejects non-zero pad
    /// bytes so every payload has exactly one valid encoding.
    pub(crate) fn align16(&mut self) -> Option<()> {
        let pad = self.pos.next_multiple_of(ALIGN) - self.pos;
        self.take(pad)?.iter().all(|&b| b == 0).then_some(())
    }

    /// A bulk-copied aligned `u128` array of exactly `len` elements.
    pub(crate) fn u128_vec(&mut self, len: usize) -> Option<Vec<u128>> {
        self.align16()?;
        let bytes = self.take(len.checked_mul(16)?)?;
        Some(
            bytes
                .chunks_exact(16)
                .map(|c| u128::from_le_bytes(c.try_into().expect("16 bytes")))
                .collect(),
        )
    }

    /// A bulk-copied aligned `u64` array of exactly `len` elements.
    pub(crate) fn u64_vec(&mut self, len: usize) -> Option<Vec<u64>> {
        self.align16()?;
        let bytes = self.take(len.checked_mul(8)?)?;
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect(),
        )
    }

    /// A bulk-copied aligned `u32` array of exactly `len` elements.
    pub(crate) fn u32_vec(&mut self, len: usize) -> Option<Vec<u32>> {
        self.align16()?;
        let bytes = self.take(len.checked_mul(4)?)?;
        Some(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        )
    }

    /// A bulk-copied aligned byte array of exactly `len` elements.
    pub(crate) fn u8_vec(&mut self, len: usize) -> Option<Vec<u8>> {
        self.align16()?;
        Some(self.take(len)?.to_vec())
    }

    /// `true` iff the whole payload was consumed (trailing garbage is
    /// rejected by loaders that call this).
    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Bytes left to read — the bound decoders check *declared* element
    /// counts against before allocating, so a forged count can never cost
    /// more memory than the payload it rode in on.
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

/// Why a frame failed validation — the distinction the read path's
/// quarantine policy turns on: a [`FrameFailure::Version`] mismatch is an
/// *expected* miss (an artifact written by another format revision, left in
/// place for the recompute to supersede), while every other failure means
/// the bytes on disk are damaged and worth preserving for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameFailure {
    /// Missing or wrong file magic (not a store frame at all, or the
    /// header itself was overwritten).
    Magic,
    /// A well-formed frame of a different format version.
    Version,
    /// The kind byte disagrees with what the filename claims.
    Kind,
    /// Non-zero reserved header bytes.
    Reserved,
    /// The file length disagrees with the declared payload length
    /// (truncation or trailing garbage).
    Length,
    /// The trailing FNV-64 checksum does not match the frame body.
    Checksum,
}

impl FrameFailure {
    /// `true` when the failure indicates damaged bytes (quarantine-worthy)
    /// rather than a version-stale artifact (a plain miss).
    pub(crate) fn is_corruption(&self) -> bool {
        !matches!(self, FrameFailure::Version)
    }

    /// A short stable label for reason sidecars and fsck listings.
    pub(crate) fn label(&self) -> &'static str {
        match self {
            FrameFailure::Magic => "bad-magic",
            FrameFailure::Version => "version-mismatch",
            FrameFailure::Kind => "kind-mismatch",
            FrameFailure::Reserved => "reserved-bytes",
            FrameFailure::Length => "length-mismatch",
            FrameFailure::Checksum => "checksum-mismatch",
        }
    }
}

/// Validate a frame of the expected `kind` and hand back its payload, or
/// `None` when any integrity gate fails (magic, version, kind, length,
/// checksum).
pub(crate) fn unframe(kind: Kind, bytes: &[u8]) -> Option<Dec<'_>> {
    unframe_checked(kind, bytes).ok()
}

/// [`unframe`] with a classified failure: which integrity gate rejected the
/// frame, so the caller can distinguish corruption from version staleness.
pub(crate) fn unframe_checked(kind: Kind, bytes: &[u8]) -> Result<Dec<'_>, FrameFailure> {
    let payload_len = check_header_checked(kind, bytes)?;
    if bytes.len() != HEADER + payload_len + 8 {
        return Err(FrameFailure::Length);
    }
    let body = &bytes[..HEADER + payload_len];
    let stored = u64::from_le_bytes(bytes[HEADER + payload_len..].try_into().expect("8 bytes"));
    if fnv64(body) != stored {
        return Err(FrameFailure::Checksum);
    }
    Ok(Dec { data: &bytes[HEADER..HEADER + payload_len], pos: 0 })
}

/// Validate only the fixed-size header fields (magic, version, kind,
/// reserved) and return the declared payload length.  `bytes` may be an
/// arbitrary prefix of the file.
fn check_header(kind: Kind, bytes: &[u8]) -> Option<usize> {
    check_header_checked(kind, bytes).ok()
}

/// [`check_header`] with a classified failure.
fn check_header_checked(kind: Kind, bytes: &[u8]) -> Result<usize, FrameFailure> {
    if bytes.len() < HEADER {
        return Err(FrameFailure::Length);
    }
    if bytes[..8] != MAGIC {
        return Err(FrameFailure::Magic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(FrameFailure::Version);
    }
    if bytes[12] != kind as u8 {
        return Err(FrameFailure::Kind);
    }
    if bytes[13..24].iter().any(|&b| b != 0) {
        return Err(FrameFailure::Reserved);
    }
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    usize::try_from(payload_len).map_err(|_| FrameFailure::Length)
}

/// Header-gate a *prefix* of a frame against the full on-disk file length
/// and hand back a decoder over whatever part of the payload the prefix
/// holds.  The checksum is **not** verified (the trailer may be outside the
/// prefix): reads that run past the prefix return `None` as usual, so this
/// serves bounded-prefix identity peeks (`Store::stats`, `Store::gc`)
/// without pulling whole payloads off disk.  Full integrity checking still
/// requires [`unframe`] over the complete file.
pub(crate) fn peek_frame(kind: Kind, prefix: &[u8], file_len: u64) -> Option<Dec<'_>> {
    let payload_len = check_header(kind, prefix)?;
    let framed = (HEADER as u64).checked_add(payload_len as u64)?.checked_add(8)?;
    if file_len != framed {
        return None;
    }
    let avail = prefix.len().min(HEADER + payload_len);
    Some(Dec { data: &prefix[HEADER..avail], pos: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(7);
        e.u64(42);
        e.u128(u128::MAX - 1);
        e.str("walker-0x5eed");
        e.into_frame(Kind::Orbits)
    }

    #[test]
    fn frames_round_trip() {
        let bytes = sample_frame();
        let mut d = unframe(Kind::Orbits, &bytes).expect("valid frame");
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u64(), Some(42));
        assert_eq!(d.u128(), Some(u128::MAX - 1));
        assert_eq!(d.str().as_deref(), Some("walker-0x5eed"));
        assert!(d.exhausted());
    }

    #[test]
    fn every_integrity_gate_rejects() {
        let good = sample_frame();
        // wrong kind
        assert!(unframe(Kind::Timelines, &good).is_none());
        // bad magic
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(unframe(Kind::Orbits, &bad).is_none());
        // version mismatch
        let mut bad = good.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(unframe(Kind::Orbits, &bad).is_none());
        // truncation (any prefix)
        for cut in 0..good.len() {
            assert!(unframe(Kind::Orbits, &good[..cut]).is_none(), "prefix {cut} accepted");
        }
        // trailing garbage
        let mut bad = good.clone();
        bad.push(0);
        assert!(unframe(Kind::Orbits, &bad).is_none());
        // single-byte corruption anywhere past the magic — reserved bytes,
        // length, payload and checksum are all covered (by the reserved-zero
        // gate, the length gate or the checksum)
        for i in 8..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(unframe(Kind::Orbits, &bad).is_none(), "corrupt byte {i} accepted");
        }
    }

    #[test]
    fn aligned_bulk_arrays_round_trip() {
        let wide = vec![0u128, 7, u128::MAX];
        let mid = vec![3u64, 1 << 40];
        let narrow = vec![9u32, 8, 7, 6, 5];
        let bytes = vec![0xAAu8, 0xBB];
        let mut e = Enc::new();
        e.u8(1); // misalign on purpose
        e.u128_slice(&wide);
        e.u8(2);
        e.u64_slice(&mid);
        e.u32_slice(&narrow);
        e.u8_slice(&bytes);
        // every array starts on a 16-byte payload offset
        let frame = e.into_frame(Kind::Timelines);
        let mut d = unframe(Kind::Timelines, &frame).expect("valid frame");
        assert_eq!(d.u8(), Some(1));
        assert_eq!(d.u128_vec(wide.len()).as_deref(), Some(&wide[..]));
        assert_eq!(d.u8(), Some(2));
        assert_eq!(d.u64_vec(mid.len()).as_deref(), Some(&mid[..]));
        assert_eq!(d.u32_vec(narrow.len()).as_deref(), Some(&narrow[..]));
        assert_eq!(d.u8_vec(bytes.len()).as_deref(), Some(&bytes[..]));
        assert!(d.exhausted());
        // a length that overruns the payload is malformed, not a panic
        let mut d = unframe(Kind::Timelines, &frame).unwrap();
        assert!(d.u128_vec(usize::MAX).is_none());
        // non-zero padding bytes are rejected (offset 33 = first pad byte
        // after the misaligning u8 at payload offset 0)
        let mut bad = frame.clone();
        bad[HEADER + 1] = 0xFF;
        let body_end = bad.len() - 8;
        let sum = fnv64(&bad[..body_end]).to_le_bytes();
        bad[body_end..].copy_from_slice(&sum);
        let mut d = unframe(Kind::Timelines, &bad).expect("checksum refreshed");
        assert_eq!(d.u8(), Some(1));
        assert!(d.u128_vec(wide.len()).is_none());
    }

    #[test]
    fn peeking_a_prefix_gates_the_header_and_file_length() {
        let frame = sample_frame();
        let len = frame.len() as u64;
        // a generous prefix exposes the leading payload fields
        let mut d = peek_frame(Kind::Orbits, &frame[..HEADER + 9], len).expect("peek");
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u64(), Some(42));
        // reads past the prefix degrade to None, not to garbage
        assert_eq!(d.u128(), None);
        // too-short prefix, wrong kind, and a file length that disagrees
        // with the declared payload length are all rejected
        assert!(peek_frame(Kind::Orbits, &frame[..HEADER - 1], len).is_none());
        assert!(peek_frame(Kind::Shard, &frame, len).is_none());
        assert!(peek_frame(Kind::Orbits, &frame, len + 1).is_none());
        assert!(peek_frame(Kind::Orbits, &frame, len - 1).is_none());
    }

    #[test]
    fn decoder_reads_never_run_past_the_payload() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_frame(Kind::Shard);
        let mut d = unframe(Kind::Shard, &bytes).unwrap();
        assert_eq!(d.u64(), Some(1));
        assert_eq!(d.u64(), None);
        assert_eq!(d.u8(), None);
        assert_eq!(d.u128(), None);
        assert!(d.str().is_none());
        // a declared string length far beyond the payload is malformed
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_frame(Kind::Shard);
        let mut d = unframe(Kind::Shard, &bytes).unwrap();
        assert!(d.str().is_none());
    }
}
