//! Schema validation for the machine-readable artifacts.
//!
//! Two schema-versioned artifact families exist:
//!
//! - **Reports** (`anonrv.report/v1`): one JSON object on stdout from
//!   `anonrv sweep --report json`, `anonrv orbits <graph> --json` and
//!   `anonrv cache <dir> stats|gc|fsck --json`.  Every report carries
//!   `"schema"` and `"command"`; the per-command required keys are
//!   documented on [`validate_report`].
//! - **Traces** (`anonrv.trace/v1`): the JSONL stream written by
//!   `--trace-out FILE`; record shapes are documented in [`crate::trace`].
//!
//! Validation lives here (not in the CLI) so tests, the `report_check`
//! bin and CI all share one implementation.

use crate::json::Value;

/// Schema tag carried by every JSON report.
pub const REPORT_SCHEMA: &str = "anonrv.report/v1";
/// Schema tag carried by the trace header line.
pub const TRACE_SCHEMA: &str = "anonrv.trace/v1";

/// What a validated report said about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSummary {
    /// The `"command"` field: `sweep`, `orbits`, `cache-stats`, `cache-gc`
    /// or `cache-fsck`.
    pub command: String,
    /// Sweep mode (`full` / `shard` / `merge` / `supervised` / `streamed`),
    /// sweeps only.
    pub mode: Option<String>,
    /// The 16-hex-digit outcome-table fingerprint, when the command
    /// produced one.
    pub table_fingerprint: Option<String>,
    /// Number of per-shard attempt rows in the supervisor section.
    pub supervisor_rows: usize,
}

fn need<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing required key `{key}`"))
}

fn need_obj<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    let found = need(v, key, what)?;
    if found.as_object().is_none() {
        return Err(format!("{what}: `{key}` must be an object"));
    }
    Ok(found)
}

fn need_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    need(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: `{key}` must be an unsigned integer"))
}

fn need_str<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    need(v, key, what)?.as_str().ok_or_else(|| format!("{what}: `{key}` must be a string"))
}

fn check_fingerprint(s: &str) -> Result<(), String> {
    if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) {
        Ok(())
    } else {
        Err(format!("table_fingerprint `{s}` is not 16 lowercase hex digits"))
    }
}

fn check_metrics(v: &Value) -> Result<(), String> {
    for section in ["counters", "gauges", "histograms"] {
        need_obj(v, section, "metrics")?;
    }
    let histograms = v.get("histograms").unwrap().as_object().unwrap();
    for (name, h) in histograms {
        let what = format!("metrics.histograms.{name}");
        let count = need_u64(h, "count", &what)?;
        need_u64(h, "sum", &what)?;
        let buckets = need(h, "buckets", &what)?
            .as_array()
            .ok_or_else(|| format!("{what}: `buckets` must be an array"))?;
        let mut total = 0u64;
        for b in buckets {
            let pair = b.as_array().filter(|p| p.len() == 2);
            let pair = pair.ok_or_else(|| format!("{what}: bucket must be a [le, count] pair"))?;
            total += pair[1].as_u64().ok_or_else(|| format!("{what}: bucket count not u64"))?;
        }
        if total != count {
            return Err(format!("{what}: bucket counts sum to {total}, `count` says {count}"));
        }
    }
    Ok(())
}

fn check_supervisor(v: &Value) -> Result<usize, String> {
    need_u64(v, "shards", "supervisor")?;
    need_u64(v, "attempts", "supervisor")?;
    let rows = need(v, "rows", "supervisor")?
        .as_array()
        .ok_or_else(|| "supervisor: `rows` must be an array".to_string())?;
    for (i, row) in rows.iter().enumerate() {
        let what = format!("supervisor.rows[{i}]");
        need_u64(row, "shard", &what)?;
        let attempt = need_u64(row, "attempt", &what)?;
        if attempt == 0 {
            return Err(format!("{what}: attempts are 1-based"));
        }
        need_u64(row, "backoff_ms", &what)?;
        need_u64(row, "elapsed_ms", &what)?;
        let outcome = need_str(row, "outcome", &what)?;
        if !["ok", "error", "timeout"].contains(&outcome) {
            return Err(format!("{what}: unknown outcome `{outcome}`"));
        }
    }
    Ok(rows.len())
}

/// Validate one JSON report against `anonrv.report/v1`.
///
/// Required for every report: `schema` (must equal [`REPORT_SCHEMA`]) and
/// `command`.  Per command:
///
/// - `sweep`: `mode` (`full` / `shard` / `merge` / `supervised` /
///   `streamed`), `meetings`, `member_stics`, `table_fingerprint`
///   (16 lowercase hex digits), `session` (object), `metrics` (object
///   with `counters`/`gauges`/`histograms`; histogram bucket counts must
///   sum to `count`).  Supervised mode additionally requires a
///   `supervisor` object whose `rows` are well-formed attempt records.
/// - `orbits`: `graph` (object) plus an `orbits` object carrying the
///   symmetry descriptor (`family`, `group_order`, `pair_classes`).
/// - `cache-stats` / `cache-gc` / `cache-fsck`: `dir` plus a
///   command-named object (`stats` / `gc` / `fsck`).
pub fn validate_report(v: &Value) -> Result<ReportSummary, String> {
    let schema = need_str(v, "schema", "report")?;
    if schema != REPORT_SCHEMA {
        return Err(format!("unknown report schema `{schema}` (expected `{REPORT_SCHEMA}`)"));
    }
    let command = need_str(v, "command", "report")?.to_string();
    let mut summary = ReportSummary {
        command: command.clone(),
        mode: None,
        table_fingerprint: None,
        supervisor_rows: 0,
    };
    match command.as_str() {
        "sweep" => {
            let mode = need_str(v, "mode", "sweep report")?;
            if !["full", "shard", "merge", "supervised", "streamed"].contains(&mode) {
                return Err(format!("sweep report: unknown mode `{mode}`"));
            }
            need_u64(v, "meetings", "sweep report")?;
            need_u64(v, "member_stics", "sweep report")?;
            let fp = need_str(v, "table_fingerprint", "sweep report")?;
            check_fingerprint(fp)?;
            need_obj(v, "session", "sweep report")?;
            check_metrics(need_obj(v, "metrics", "sweep report")?)?;
            if mode == "supervised" {
                summary.supervisor_rows =
                    check_supervisor(need_obj(v, "supervisor", "sweep report")?)?;
            }
            summary.mode = Some(mode.to_string());
            summary.table_fingerprint = Some(fp.to_string());
        }
        "orbits" => {
            need_obj(v, "graph", "orbits report")?;
            let orbits = need_obj(v, "orbits", "orbits report")?;
            need_str(orbits, "family", "orbits report")?;
            need_u64(orbits, "group_order", "orbits report")?;
            need_u64(orbits, "pair_classes", "orbits report")?;
        }
        "cache-stats" | "cache-gc" | "cache-fsck" => {
            need_str(v, "dir", &command)?;
            let section = command.trim_start_matches("cache-");
            need_obj(v, section, &command)?;
        }
        other => return Err(format!("unknown report command `{other}`")),
    }
    Ok(summary)
}

/// What a validated trace contained.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Number of span records.
    pub spans: usize,
    /// Number of event records.
    pub events: usize,
    /// `(event name, occurrences)`, sorted by name.
    pub event_counts: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Occurrences of one event name (0 when absent).
    pub fn event_count(&self, name: &str) -> u64 {
        self.event_counts.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
    }
}

/// Child spans may overshoot their parent's recorded end by this many
/// microseconds: start/duration are independently truncated to whole µs.
const NEST_SLOP_US: u64 = 2;

/// Validate a whole `anonrv.trace/v1` JSONL stream.
///
/// Checks, in order: every line parses; the first line is the schema
/// header; every record carries `v == 1` and a known `kind`; span ids are
/// unique; every non-null span/event parent refers to a span present in
/// the trace; and every child span's `[start, start+dur]` interval lies
/// within its parent's (± a few µs of slop for truncation).  Cross-thread
/// records legitimately have null parents, so orphanhood is not an error —
/// a dangling parent *id* is.
pub fn validate_trace(content: &str) -> Result<TraceSummary, String> {
    struct SpanRec {
        parent: Option<u64>,
        start_us: u64,
        dur_us: u64,
    }
    let mut spans: std::collections::HashMap<u64, SpanRec> = std::collections::HashMap::new();
    let mut event_parents: Vec<(usize, u64)> = Vec::new();
    let mut summary = TraceSummary::default();
    let mut saw_header = false;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let what = format!("trace line {}", lineno + 1);
        let v = crate::json::parse(line).map_err(|e| format!("{what}: {e}"))?;
        if need_u64(&v, "v", &what)? != crate::trace::TRACE_VERSION {
            return Err(format!("{what}: unsupported record version"));
        }
        let kind = need_str(&v, "kind", &what)?;
        if !saw_header {
            if kind != "header" {
                return Err(format!("{what}: first record must be the header"));
            }
            let schema = need_str(&v, "schema", &what)?;
            if schema != TRACE_SCHEMA {
                return Err(format!("{what}: unknown trace schema `{schema}`"));
            }
            saw_header = true;
            continue;
        }
        let parent = match need(&v, "parent", &what)? {
            Value::Null => None,
            p => Some(
                p.as_u64().ok_or_else(|| format!("{what}: `parent` must be null or a span id"))?,
            ),
        };
        match kind {
            "header" => return Err(format!("{what}: duplicate header")),
            "span" => {
                let id = need_u64(&v, "id", &what)?;
                need_str(&v, "name", &what)?;
                let start_us = need_u64(&v, "start_us", &what)?;
                let dur_us = need_u64(&v, "dur_us", &what)?;
                if spans.insert(id, SpanRec { parent, start_us, dur_us }).is_some() {
                    return Err(format!("{what}: duplicate span id {id}"));
                }
                summary.spans += 1;
            }
            "event" => {
                let name = need_str(&v, "name", &what)?;
                need_u64(&v, "ts_us", &what)?;
                match summary.event_counts.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                    Ok(i) => summary.event_counts[i].1 += 1,
                    Err(i) => summary.event_counts.insert(i, (name.to_string(), 1)),
                }
                if let Some(p) = parent {
                    event_parents.push((lineno + 1, p));
                }
                summary.events += 1;
            }
            other => return Err(format!("{what}: unknown record kind `{other}`")),
        }
    }
    if !saw_header {
        return Err("trace: empty stream (no header)".to_string());
    }
    for (lineno, p) in &event_parents {
        if !spans.contains_key(p) {
            return Err(format!("trace line {lineno}: event parent {p} is not a span id"));
        }
    }
    for (id, span) in &spans {
        let Some(pid) = span.parent else { continue };
        let parent = spans
            .get(&pid)
            .ok_or_else(|| format!("trace: span {id} parent {pid} is not a span id"))?;
        let child_end = span.start_us.saturating_add(span.dur_us);
        let parent_end = parent.start_us.saturating_add(parent.dur_us).saturating_add(NEST_SLOP_US);
        if span.start_us < parent.start_us || child_end > parent_end {
            return Err(format!(
                "trace: span {id} [{}, {child_end}] escapes parent {pid} [{}, {}]",
                span.start_us, parent.start_us, parent_end,
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn minimal_sweep() -> Value {
        json::parse(
            r#"{"schema":"anonrv.report/v1","command":"sweep","mode":"full",
                "meetings":3,"member_stics":4,
                "table_fingerprint":"00ff00ff00ff00ff",
                "session":{"orbits":2},
                "metrics":{"counters":{"a":1},"gauges":{},
                  "histograms":{"h":{"count":2,"sum":5,"min":1,"max":4,
                    "buckets":[[1,1],[7,1]]}}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn sweep_report_validates() {
        let s = validate_report(&minimal_sweep()).unwrap();
        assert_eq!(s.command, "sweep");
        assert_eq!(s.mode.as_deref(), Some("full"));
        assert_eq!(s.table_fingerprint.as_deref(), Some("00ff00ff00ff00ff"));
    }

    #[test]
    fn report_rejections() {
        let mut bad_schema = minimal_sweep();
        if let Value::Obj(members) = &mut bad_schema {
            members[0].1 = Value::from("anonrv.report/v9");
        }
        assert!(validate_report(&bad_schema).unwrap_err().contains("unknown report schema"));

        let mut bad_fp = minimal_sweep();
        if let Value::Obj(members) = &mut bad_fp {
            members[5].1 = Value::from("XYZ");
        }
        assert!(validate_report(&bad_fp).unwrap_err().contains("not 16 lowercase hex"));

        let mut torn = minimal_sweep();
        if let Value::Obj(members) = &mut torn {
            if let Value::Obj(metrics) = &mut members[7].1 {
                if let Value::Obj(hists) = &mut metrics[2].1 {
                    if let Value::Obj(h) = &mut hists[0].1 {
                        h[0].1 = Value::Uint(99);
                    }
                }
            }
        }
        assert!(validate_report(&torn).unwrap_err().contains("bucket counts sum"));
    }

    #[test]
    fn cache_reports_validate() {
        let v = json::parse(
            r#"{"schema":"anonrv.report/v1","command":"cache-fsck",
                "dir":"/tmp/x","fsck":{"scanned":2,"quarantined":0}}"#,
        )
        .unwrap();
        assert_eq!(validate_report(&v).unwrap().command, "cache-fsck");
        let missing = json::parse(r#"{"schema":"anonrv.report/v1","command":"cache-gc"}"#).unwrap();
        assert!(validate_report(&missing).is_err());
    }

    #[test]
    fn trace_round_trip_and_rejections() {
        let good = concat!(
            r#"{"v":1,"kind":"header","schema":"anonrv.trace/v1"}"#,
            "\n",
            r#"{"v":1,"kind":"event","name":"x","ts_us":5,"parent":2,"thread":"t","fields":{}}"#,
            "\n",
            r#"{"v":1,"kind":"span","id":2,"parent":1,"name":"in","start_us":4,"dur_us":3,"thread":"t"}"#,
            "\n",
            r#"{"v":1,"kind":"span","id":1,"parent":null,"name":"out","start_us":1,"dur_us":9,"thread":"t"}"#,
            "\n",
        );
        let s = validate_trace(good).unwrap();
        assert_eq!((s.spans, s.events), (2, 1));
        assert_eq!(s.event_count("x"), 1);
        assert_eq!(s.event_count("absent"), 0);

        assert!(validate_trace("").unwrap_err().contains("no header"));
        let headerless =
            r#"{"v":1,"kind":"event","name":"x","ts_us":1,"parent":null,"thread":"t","fields":{}}"#;
        assert!(validate_trace(headerless).unwrap_err().contains("must be the header"));
        let escaped = good.replace(r#""start_us":4,"dur_us":3"#, r#""start_us":4,"dur_us":900"#);
        assert!(validate_trace(&escaped).unwrap_err().contains("escapes parent"));
        let dangling = good.replace(r#""parent":2"#, r#""parent":77"#);
        assert!(validate_trace(&dangling).unwrap_err().contains("not a span id"));
    }
}
