//! Sharded persistence of planned sweeps.
//!
//! A [`SweepPlan`]'s work-list — one representative STIC per `(pair class,
//! δ)` — is embarrassingly parallel: each class's outcomes are the merge of
//! two deterministic timelines and depend on nothing outside the class.
//! This module is the *persistence* half of splitting that work-list across
//! processes (or machines sharing a directory): `--shards K --shard-index i`
//! selects the classes `c mod K == i` ([`ShardSpec::classes`]), a
//! [`crate::SweepSession::run_shard`] executes the slice and writes one
//! partial outcome artifact here, and [`Store::merge_shards`] reassembles
//! the `K` partial tables into the exact table a single-process
//! [`anonrv_plan::PlannedSweep::run`] produces — **bit-identical**, because
//! assembly is pure index arithmetic (`table[class · |δ| + di]`) over
//! outcomes that were each computed by the same deterministic merge
//! regardless of which process ran them.
//!
//! Round-robin assignment (rather than contiguous ranges) balances the
//! shards under the one systematic cost gradient classes have: classes
//! sharing a first-coordinate orbit appear consecutively, and their
//! representative timelines are recorded on first touch, so interleaving
//! spreads both the recording and the merging evenly.
//!
//! Unlike the merged outcome tables (which serve smaller horizons by prefix
//! truncation), shard partials are keyed to their **exact** horizon: mixing
//! slices executed at different horizons into one merge would be a
//! correctness trap, so a partial from a different horizon is simply a
//! miss.  Once a merged table covering a shard's horizon exists, the
//! partial is superseded and [`Store::gc`] reclaims it.
//!
//! The merge refuses to produce a table unless every class is covered
//! exactly once by mutually consistent shards — a missing shard, a
//! double-run with inconsistent specs, or a partial file from a different
//! plan all fail loudly instead of merging silently wrong.

use std::io;
use std::path::PathBuf;

use anonrv_graph::PortGraph;
use anonrv_plan::SweepPlan;
use anonrv_sim::SimOutcome;

use crate::cache::{
    decode_outcome_table, decode_plan_identity, encode_outcome_table, encode_plan_identity, Store,
};
use crate::codec::{Enc, Kind};
use crate::fault;

/// One slice of a sharded sweep: this process is shard `index` of `shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
    index: usize,
}

impl ShardSpec {
    /// Validate a `(shards, index)` pair (`shards >= 1`, `index < shards`).
    pub fn new(shards: usize, index: usize) -> Result<Self, String> {
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        if index >= shards {
            return Err(format!("--shard-index {index} out of range for {shards} shard(s)"));
        }
        Ok(ShardSpec { shards, index })
    }

    /// Total number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// This shard's index, in `0..shards`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The pair classes this shard executes: round-robin over
    /// `0..num_classes` (see the module docs for why round-robin).
    pub fn classes(&self, num_classes: usize) -> Vec<usize> {
        (self.index..num_classes).step_by(self.shards).collect()
    }
}

impl std::fmt::Display for ShardSpec {
    /// `"2/4"` = shard index 2 of 4.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.shards)
    }
}

/// The partial outcome table produced by one shard: the outcomes of
/// [`ShardSpec::classes`], class-major and δ-minor within each class block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcomes {
    /// Which slice this is.
    pub spec: ShardSpec,
    /// The classes executed, in execution order.
    pub classes: Vec<usize>,
    /// `classes.len() × |deltas|` outcomes (block `k` holds class
    /// `classes[k]`).
    pub table: Vec<SimOutcome>,
}

impl Store {
    fn shard_path(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        spec: ShardSpec,
    ) -> PathBuf {
        // reuse the outcomes stem so all artifacts of one sweep sort
        // together; the horizon is part of the name (unlike merged tables,
        // partials are exact-horizon — see the module docs)
        let stem = self.plan_artifact_stem(g, program_key, plan);
        self.root().join(format!(
            "shard-{stem}-h{:x}-{}of{}.anrv",
            plan.horizon(),
            spec.index(),
            spec.shards()
        ))
    }

    /// Persist one shard's partial outcomes.  Returns the artifact path.
    pub fn save_shard(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        outcomes: &ShardOutcomes,
    ) -> io::Result<PathBuf> {
        assert_eq!(
            outcomes.table.len(),
            outcomes.classes.len() * plan.deltas().len(),
            "shard table does not match its class list"
        );
        let mut e = Enc::new();
        encode_plan_identity(&mut e, g, program_key, plan);
        e.u128(plan.horizon());
        e.usize(outcomes.spec.shards());
        e.usize(outcomes.spec.index());
        e.usize(outcomes.classes.len());
        for &c in &outcomes.classes {
            e.usize(c);
        }
        encode_outcome_table(&mut e, &outcomes.table);
        fault::hit_io("shard.persist")?;
        let path = self.shard_path(g, program_key, plan, outcomes.spec);
        self.write_atomic(&path, &e.into_frame(Kind::Shard))?;
        Ok(path)
    }

    /// Load one shard's partial outcomes, or `None` on any miss (absent /
    /// corrupt / stale / produced for a different plan or **horizon** —
    /// shard partials never serve by prefix, see the module docs).
    pub fn load_shard(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        spec: ShardSpec,
    ) -> Option<ShardOutcomes> {
        let path = self.shard_path(g, program_key, plan, spec);
        let bytes = self.read_artifact(&path)?;
        let mut d = self.gate_frame(&path, Kind::Shard, &bytes)?;
        decode_plan_identity(&mut d, g, program_key, plan)?;
        if d.u128()? != plan.horizon() {
            return None;
        }
        if d.usize()? != spec.shards() || d.usize()? != spec.index() {
            return None;
        }
        let num_classes = plan.orbits().num_pair_classes();
        let count = d.usize()?;
        let mut classes = Vec::with_capacity(count);
        for _ in 0..count {
            let c = d.usize()?;
            if c >= num_classes {
                return None;
            }
            classes.push(c);
        }
        let table = decode_outcome_table(&mut d)?;
        if table.len() != count * plan.deltas().len() {
            return None;
        }
        d.exhausted().then_some(ShardOutcomes { spec, classes, table })
    }

    /// The shard indices of a `K`-way split whose partial artifact is
    /// missing or unloadable — the probe [`crate::SweepSession`]'s
    /// supervisor re-dispatches from, and the ground truth a retry loop
    /// should trust over any in-memory bookkeeping (an artifact that fails
    /// its integrity gates *is* a missing shard, whatever the executor
    /// reported).  An empty result means [`Store::merge_shards`] will
    /// succeed, barring concurrent deletion.
    pub fn missing_shards(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        shards: usize,
    ) -> Result<Vec<usize>, String> {
        ShardSpec::new(shards, 0)?; // validate the count once
        Ok((0..shards)
            .filter(|&index| {
                let spec = ShardSpec::new(shards, index).expect("index < shards");
                self.load_shard(g, program_key, plan, spec).is_none()
            })
            .collect())
    }

    /// Merge the `shards` partial artifacts of `(g, program_key, plan)`
    /// into the full representative-outcome table — bit-identical to an
    /// unsharded [`anonrv_plan::PlannedSweep::run`] (see the module docs).
    /// Fails with a description naming the first missing or inconsistent
    /// shard.
    pub fn merge_shards(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        shards: usize,
    ) -> Result<Vec<SimOutcome>, String> {
        let mut parts = Vec::with_capacity(shards);
        for index in 0..shards {
            let spec = ShardSpec::new(shards, index)?;
            let part = self.load_shard(g, program_key, plan, spec).ok_or_else(|| {
                format!("shard {index}/{shards} is missing or invalid in {}", self.root().display())
            })?;
            parts.push(part);
        }
        merge_shard_outcomes(plan, &parts)
    }
}

/// Assemble partial shard tables into the full class-major, δ-minor table,
/// verifying that the parts cover every class exactly once.
pub fn merge_shard_outcomes(
    plan: &SweepPlan,
    parts: &[ShardOutcomes],
) -> Result<Vec<SimOutcome>, String> {
    let num_classes = plan.orbits().num_pair_classes();
    let ndeltas = plan.deltas().len();
    let mut table: Vec<Option<SimOutcome>> = vec![None; num_classes * ndeltas];
    for part in parts {
        if part.table.len() != part.classes.len() * ndeltas {
            return Err(format!("shard {} table does not match its class list", part.spec));
        }
        for (k, &class) in part.classes.iter().enumerate() {
            for di in 0..ndeltas {
                let slot = class * ndeltas + di;
                if table[slot].is_some() {
                    return Err(format!("class {class} covered by more than one shard"));
                }
                table[slot] = Some(part.table[k * ndeltas + di]);
            }
        }
    }
    table
        .into_iter()
        .enumerate()
        .map(|(slot, o)| {
            o.ok_or_else(|| format!("class {} not covered by any shard", slot / ndeltas.max(1)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{TempDir, Walker};
    use crate::SweepSession;
    use anonrv_graph::generators::oriented_torus;
    use anonrv_plan::PlannedSweep;
    use anonrv_sim::EngineConfig;

    /// A shard slice executed in-process (the persistence-free half of
    /// [`SweepSession::run_shard`], for tests of the pure merge).
    fn slice(planned: &PlannedSweep<'_>, plan: &SweepPlan, spec: ShardSpec) -> ShardOutcomes {
        let classes = spec.classes(plan.orbits().num_pair_classes());
        let table = planned.run_classes(plan, &classes);
        ShardOutcomes { spec, classes, table }
    }

    #[test]
    fn shard_specs_validate_and_partition_the_classes() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(2, 2).is_err());
        assert!(ShardSpec::new(2, 3).is_err());
        for shards in [1usize, 2, 3, 7] {
            let mut seen = [0usize; 23];
            for index in 0..shards {
                for c in ShardSpec::new(shards, index).unwrap().classes(23) {
                    seen[c] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "{shards} shards must partition the classes");
        }
        assert_eq!(ShardSpec::new(4, 1).unwrap().to_string(), "1/4");
    }

    #[test]
    fn sharded_merge_is_bit_identical_to_the_unsharded_run() {
        let dir = TempDir::new("shard-merge");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let key = "test-walker-5eed";
        let deltas: Vec<anonrv_sim::Round> = vec![0, 1, 2, 3, 4];

        // the single-process reference table
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas, 64);
        let reference = planned.run(&plan);

        for shards in [2usize, 3] {
            // each "process": its own session, its own partial artifact
            for index in 0..shards {
                let mut worker =
                    SweepSession::new(Some(&store), &g, &program, key, EngineConfig::batch(64));
                let spec = ShardSpec::new(shards, index).unwrap();
                let part = worker.run_shard(&plan, spec).unwrap();
                assert_eq!(part.classes, spec.classes(12));
            }
            let merged = store.merge_shards(&g, key, &plan, shards).unwrap();
            assert_eq!(merged, reference.table(), "{shards}-shard merge diverged");
        }

        // merging with the wrong shard count fails loudly
        assert!(store.merge_shards(&g, key, &plan, 5).is_err());
    }

    #[test]
    fn merge_rejects_gaps_and_double_coverage() {
        let g = oriented_torus(3, 3).unwrap();
        let program = Walker { seed: 1 };
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(32));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 32);
        let a = slice(&planned, &plan, ShardSpec::new(2, 0).unwrap());
        let b = slice(&planned, &plan, ShardSpec::new(2, 1).unwrap());
        // complete coverage merges
        let merged = merge_shard_outcomes(&plan, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.len(), plan.num_representative_queries());
        // a missing slice is a gap
        let err = merge_shard_outcomes(&plan, std::slice::from_ref(&a)).unwrap_err();
        assert!(err.contains("not covered"), "{err}");
        // the same slice twice is double coverage
        let err = merge_shard_outcomes(&plan, &[a.clone(), a.clone(), b]).unwrap_err();
        assert!(err.contains("more than one shard"), "{err}");
        // a table/class-list mismatch is rejected
        let mut broken = a;
        broken.table.pop();
        let err = merge_shard_outcomes(&plan, &[broken]).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn shard_artifacts_are_rejected_for_a_different_plan_or_horizon() {
        let dir = TempDir::new("shard-identity");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 3).unwrap();
        let program = Walker { seed: 9 };
        let key = "test-walker-9";
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(32));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 32);
        let spec = ShardSpec::new(2, 0).unwrap();
        let part = slice(&planned, &plan, spec);
        let path = store.save_shard(&g, key, &plan, &part).unwrap();
        assert!(store.load_shard(&g, key, &plan, spec).is_some());
        // same file, interrogated under a different plan identity: miss
        let other_plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2], 32);
        assert!(store.load_shard(&g, key, &other_plan, spec).is_none());
        assert!(store.load_shard(&g, "other-key", &plan, spec).is_none());
        // a different horizon is a miss too: partials never serve by prefix
        let other_horizon = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 16);
        assert!(store.load_shard(&g, key, &other_horizon, spec).is_none());
        // corruption is caught by the frame
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_shard(&g, key, &plan, spec).is_none());
    }
}
