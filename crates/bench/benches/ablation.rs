//! EXP-ABL bench: the cost of the substituted components (DESIGN.md §4) —
//! UXS generation and coverage verification, and the two label schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anonrv_core::label::{ExactViewLabel, LabelScheme, TrailSignature};
use anonrv_graph::generators::{lollipop, oriented_torus};
use anonrv_uxs::{covers_from_all, LengthRule, PseudorandomUxs, UxsProvider};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    for (name, rule) in [
        ("cubic", LengthRule::Cubic { c: 1, min_len: 32 }),
        ("quadratic", LengthRule::Quadratic { c: 1, min_len: 16 }),
        ("fixed-64", LengthRule::Fixed(64)),
    ] {
        let provider = PseudorandomUxs::with_rule(rule);
        group.bench_with_input(
            BenchmarkId::new("uxs generation, n=16", name),
            &provider,
            |b, p| b.iter(|| p.sequence(black_box(16))),
        );
        let torus = oriented_torus(4, 4).unwrap();
        let y = provider.sequence(16);
        group.bench_with_input(BenchmarkId::new("coverage check, torus-4x4", name), &y, |b, y| {
            b.iter(|| covers_from_all(black_box(&torus), y))
        });
    }
    let lp = lollipop(4, 3).unwrap();
    let trail = TrailSignature::default();
    group.bench_function("trail-signature label, lollipop-4-3", |b| {
        b.iter(|| trail.label_of(black_box(&lp), 0, 7))
    });
    let exact = ExactViewLabel;
    group.bench_function("exact-view label, lollipop-4-3", |b| {
        b.iter(|| exact.label_of(black_box(&lp), 0, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
