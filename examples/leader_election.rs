//! The rendezvous <-> leader election equivalence from the paper's
//! introduction, in both directions.
//!
//! ```sh
//! cargo run --example leader_election
//! ```

use anonrv_core::leader::{
    elect_leader, entry_ports_of_actions, LeaderElection, Role, WaitingForMommy,
};
use anonrv_core::prelude::*;
use anonrv_graph::generators::oriented_ring;
use anonrv_sim::{simulate_with, EngineConfig, Stic};

fn main() {
    let g = oriented_ring(8).expect("ring generation");

    // Direction 1 — leader election gives rendezvous ("waiting for Mommy"):
    // once the roles are assigned, even perfectly symmetric positions with
    // delay 0 (infeasible for identical anonymous agents!) become easy.
    let (u, v) = (0usize, 4usize);
    assert!(!is_feasible(&g, u, v, 0), "symmetric + simultaneous start is infeasible");
    let uxs = PseudorandomUxs::default();
    let leader = WaitingForMommy::new(Role::Leader, g.num_nodes(), &uxs);
    let follower = WaitingForMommy::new(Role::Follower, g.num_nodes(), &uxs);
    let horizon = leader.exploration_bound() + 2;
    let outcome = simulate_with(
        &g,
        &leader,
        &follower,
        &Stic::new(u, v, 0),
        EngineConfig::with_horizon(horizon),
    );
    match outcome.meeting {
        Some(m) => println!(
            "waiting-for-Mommy: leader finds the follower at node {} after {} rounds",
            m.node, m.later_round
        ),
        None => println!("waiting-for-Mommy: no meeting within {horizon} rounds"),
    }

    // Direction 2 — rendezvous gives leader election: after meeting, the
    // agents compare their trajectories (sequences of entry ports); at the
    // last round where the entry ports differ, the larger port wins.
    // Here: agent A walked clockwise into the meeting node, agent B waited.
    let a_actions = [Some(0), Some(0), Some(0), Some(0)];
    let b_actions = [None, None, None, None];
    let a_entries = entry_ports_of_actions(&g, 0, &a_actions);
    let b_entries = entry_ports_of_actions(&g, 4, &b_actions);
    let elected = elect_leader(&a_entries, &b_entries);
    println!(
        "post-rendezvous election: {}",
        match elected {
            LeaderElection::AgentA => "the walking agent is elected leader",
            LeaderElection::AgentB => "the waiting agent is elected leader",
            LeaderElection::Undecided => "undecided (identical trajectories)",
        }
    );
    assert_ne!(elected, LeaderElection::Undecided);
}
