//! The immutable port-labelled graph representation.

use crate::error::GraphError;
use crate::Result;

/// Index of a node.  Nodes are anonymous in the model; indices exist only so
/// that the *simulator* and the *analysis* code can talk about them.  Agent
/// code never observes a `NodeId`.
pub type NodeId = usize;

/// A port number local to a node.  A node of degree `d` has ports
/// `0, 1, ..., d - 1`.
pub type Port = usize;

/// A compact, *unverified* claim that a graph belongs to a structured family
/// whose automorphism group has a closed form.  Generators stamp the matching
/// hint at construction time; [`crate::group::SymmetryGroup::from_hint`]
/// verifies every generator the hint implies against the actual graph before
/// any code trusts it, so a wrong hint costs a fallback to the explicit BFS
/// computation — never a wrong answer.
///
/// This is also the on-disk descriptor the persistent plan cache serialises
/// for implicit groups (a few bytes instead of an `|Aut|·n` permutation
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymmetryHint {
    /// Oriented ring / uniformly-oriented circulant: the `n` rotations
    /// `v ↦ (v + k) mod n`.
    Cyclic,
    /// Oriented torus: the `rows · cols` translations.
    Torus {
        /// Torus height.
        rows: usize,
        /// Torus width.
        cols: usize,
    },
    /// Hypercube with dimension-indexed ports: the `2^dim` XOR-translations.
    Hypercube {
        /// Hypercube dimension.
        dim: u32,
    },
}

/// A simple, finite, undirected, connected, port-labelled graph.
///
/// For every node `v` and every port `p < deg(v)` the graph stores the pair
/// `(w, q)` where `w` is the neighbour reached through port `p` and `q` is the
/// port of the edge `{v, w}` at `w` (i.e. the port by which an agent *enters*
/// `w` when leaving `v` by `p`).  This matches the paper's `succ(v, p)`
/// together with the entry-port observation of the agent.
///
/// The structure is immutable after construction; use
/// [`crate::builder::PortGraphBuilder`] or one of the [`crate::generators`].
#[derive(Debug, Clone, Eq)]
pub struct PortGraph {
    /// `adj[v][p] = (neighbour, remote_port)`.
    adj: Vec<Box<[(NodeId, Port)]>>,
    /// Number of edges, cached.
    m: usize,
    /// Optional closed-form symmetry claim stamped by the generators; an
    /// advisory annotation, *not* part of the graph's identity (see the
    /// manual [`PartialEq`] below) and always verified before use.
    symmetry: Option<SymmetryHint>,
}

/// Equality is purely structural (adjacency); the symmetry hint is advisory
/// metadata, so a generator-built torus and a hand-built copy of the same
/// port assignment compare equal.
impl PartialEq for PortGraph {
    fn eq(&self, other: &Self) -> bool {
        self.adj == other.adj && self.m == other.m
    }
}

impl PortGraph {
    /// Construct directly from an adjacency structure.  Intended for the
    /// builder and the generators; performs full validation.
    pub(crate) fn from_adjacency(adj: Vec<Box<[(NodeId, Port)]>>) -> Result<Self> {
        let m: usize = adj.iter().map(|l| l.len()).sum::<usize>() / 2;
        let g = PortGraph { adj, m, symmetry: None };
        g.validate()?;
        Ok(g)
    }

    /// Stamp a closed-form symmetry claim.  Generator-internal: the hint is
    /// trusted nowhere — [`crate::group::SymmetryGroup::from_hint`] verifies
    /// it against the actual adjacency before producing an implicit group.
    pub(crate) fn with_symmetry_hint(mut self, hint: SymmetryHint) -> Self {
        self.symmetry = Some(hint);
        self
    }

    /// The closed-form symmetry claim stamped by the generator that built
    /// this graph, if any.  Advisory: verify through
    /// [`crate::group::SymmetryGroup::from_hint`] before use.
    #[inline]
    pub fn symmetry_hint(&self) -> Option<SymmetryHint> {
        self.symmetry
    }

    /// Number of nodes (the paper's *size* `n`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).min().unwrap_or(0)
    }

    /// The paper's `succ(v, p)`: the neighbour of `v` reached through port
    /// `p`, together with the port of the same edge at that neighbour (the
    /// *entry port* an agent observes upon arrival).
    ///
    /// # Panics
    /// Panics if `v` or `p` are out of range; use [`PortGraph::try_succ`] for
    /// a checked variant.
    #[inline]
    pub fn succ(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        self.adj[v][p]
    }

    /// Checked variant of [`PortGraph::succ`].
    pub fn try_succ(&self, v: NodeId, p: Port) -> Result<(NodeId, Port)> {
        let n = self.num_nodes();
        let list = self.adj.get(v).ok_or(GraphError::NodeOutOfRange { node: v, n })?;
        list.get(p).copied().ok_or(GraphError::PortOutOfRange {
            node: v,
            port: p,
            degree: list.len(),
        })
    }

    /// Iterator over the node indices `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes()
    }

    /// Iterator over `(port, neighbour, remote_port)` triples at `v`.
    pub fn ports(&self, v: NodeId) -> impl Iterator<Item = (Port, NodeId, Port)> + '_ {
        self.adj[v].iter().enumerate().map(|(p, &(w, q))| (p, w, q))
    }

    /// Iterator over undirected edges, each reported once as
    /// `(u, port_at_u, v, port_at_v)` with `u < v`, ordered by `(u, port_at_u)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Port, NodeId, Port)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter()
                .enumerate()
                .filter(move |(_, &(v, _))| u < v)
                .map(move |(p, &(v, q))| (u, p, v, q))
        })
    }

    /// The port at `v` leading back to `u`, if `{u, v}` is an edge.
    pub fn port_towards(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.adj[v].iter().position(|&(w, _)| w == u)
    }

    /// `true` iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.port_towards(u, v).is_some()
    }

    /// `true` iff every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Full structural validation: port consistency (the two directions of
    /// every edge agree), simplicity (no loops / parallel edges), no isolated
    /// node and connectivity.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_nodes();
        for (v, list) in self.adj.iter().enumerate() {
            if list.is_empty() {
                return Err(GraphError::IsolatedNode { node: v });
            }
            let mut seen_neighbours = Vec::with_capacity(list.len());
            for (p, &(w, q)) in list.iter().enumerate() {
                if w >= n {
                    return Err(GraphError::NodeOutOfRange { node: w, n });
                }
                if w == v {
                    return Err(GraphError::SelfLoop { node: v });
                }
                if seen_neighbours.contains(&w) {
                    return Err(GraphError::ParallelEdge { u: v, v: w });
                }
                seen_neighbours.push(w);
                // the reverse half-edge must exist and point back through `p`
                let back = self.adj.get(w).and_then(|lw| lw.get(q)).copied().ok_or(
                    GraphError::PortOutOfRange { node: w, port: q, degree: self.degree(w) },
                )?;
                if back != (v, p) {
                    return Err(GraphError::DuplicatePort { node: w, port: q });
                }
            }
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }

    /// `true` iff the graph is connected (it always is for a successfully
    /// validated graph; exposed for builder-internal use and tests).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &(w, _) in self.adj[v].iter() {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Degree sequence sorted in non-increasing order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(|l| l.len()).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PortGraphBuilder;
    use crate::generators::{complete, oriented_ring};

    #[test]
    fn succ_and_entry_ports_agree_across_an_edge() {
        let g = oriented_ring(5).unwrap();
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let (w, q) = g.succ(v, p);
                let (back, back_port) = g.succ(w, q);
                assert_eq!(back, v);
                assert_eq!(back_port, p);
            }
        }
    }

    #[test]
    fn try_succ_rejects_bad_indices() {
        let g = oriented_ring(4).unwrap();
        assert!(g.try_succ(0, 0).is_ok());
        assert!(g.try_succ(0, 2).is_err());
        assert!(g.try_succ(9, 0).is_err());
    }

    #[test]
    fn edges_are_reported_once() {
        let g = complete(5).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 10);
        assert_eq!(g.num_edges(), 10);
        for (u, _, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn port_towards_finds_the_right_port() {
        let g = oriented_ring(6).unwrap();
        for (u, pu, v, pv) in g.edges().collect::<Vec<_>>() {
            assert_eq!(g.port_towards(u, v), Some(pu));
            assert_eq!(g.port_towards(v, u), Some(pv));
        }
        assert_eq!(g.port_towards(0, 3), None);
    }

    #[test]
    fn regularity_and_degree_sequence() {
        let ring = oriented_ring(7).unwrap();
        assert!(ring.is_regular());
        assert_eq!(ring.degree_sequence(), vec![2; 7]);

        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 0, 1, 0).unwrap();
        b.add_edge(1, 1, 2, 0).unwrap();
        let path = b.build().unwrap();
        assert!(!path.is_regular());
        assert_eq!(path.degree_sequence(), vec![2, 1, 1]);
        assert_eq!(path.max_degree(), 2);
        assert_eq!(path.min_degree(), 1);
    }

    #[test]
    fn has_edge_matches_edge_list() {
        let g = complete(4).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }
}
