//! `anonrv-obs` — dependency-free structured telemetry for the sweep stack.
//!
//! The workspace vendors every external crate, so this crate hand-rolls
//! what `tracing` + `metrics` would normally provide: a lock-cheap metrics
//! registry ([`metrics`]), explicit timing spans and structured events
//! with pluggable sinks ([`trace`]), a minimal exact-integer JSON codec
//! ([`json`]) and schema validation for the machine-readable artifacts
//! ([`report`]).
//!
//! ## The zero-cost contract
//!
//! Telemetry is **off by default**.  Every instrumentation site in the
//! workspace goes through the free functions below ([`counter_add`],
//! [`observe`], [`event`], [`span`], …), and each of them starts with a
//! single relaxed atomic load of the global state; when no pipeline is
//! installed they return immediately — no allocation, no formatting, no
//! lock, no syscall.  Instrumented code that must build field values
//! (e.g. `format!` a shard label) pre-checks [`enabled`] first.  This is
//! the same discipline as the store's failpoint registry, and it is what
//! keeps BENCH_store.json warm-serving numbers identical with telemetry
//! compiled in.
//!
//! ## Pipelines
//!
//! [`install`] switches telemetry on and returns an [`ObsGuard`]; dropping
//! the guard snapshots nothing, flushes the sink and switches everything
//! off again.  Installation starts from a cleared registry, so one
//! process can run several independent observed sections (benchmarks do).
//! Installs serialize on an internal mutex: concurrent tests block rather
//! than interleave their metrics.
//!
//! Two sink arrangements matter in practice:
//!
//! - **metrics only** ([`ObsConfig::metrics_only`]): counters, gauges,
//!   histograms and span durations accumulate in the registry; nothing is
//!   written anywhere until [`snapshot`] is rendered.
//! - **metrics + trace** ([`ObsConfig::trace_file`] /
//!   [`ObsConfig::with_sink`]): additionally every span close and every
//!   event becomes one JSONL record (`anonrv.trace/v1`, see [`trace`]).
//!
//! ## Event and metric taxonomy
//!
//! Names are dot-separated, lowercase, coarse-to-fine.  The workspace
//! currently emits (see ARCHITECTURE.md "Observability" for the same list
//! with prose):
//!
//! | prefix | emitted by | examples |
//! |---|---|---|
//! | `span.*.us` | every span close (histogram) | `span.session.plan.us`, `span.session.execute.us` |
//! | `session.outcome.*` | `SweepSession` provenance counters | `session.outcome.cold`, `session.outcome.warm_prefix` |
//! | `session.timeline.*` | timeline-cache probe results | `session.timeline.hits`, `session.timeline.misses` |
//! | `supervisor.*` | shard supervisor | `supervisor.attempts`, `supervisor.retries`, event `supervisor.attempt` |
//! | `store.*` | store I/O | `store.read.bytes` (histogram), `store.lock.takeover`, event `store.quarantine` |
//! | `fault.trip.*` | failpoint registry, when armed | `fault.trip.store.rename`, event `fault.trip` |
//! | `merge.*` / `record.*` | merge kernels / timeline recording | `merge.segments`, `merge.scratch_reuse` |
//! | `event.*` | bumped once per emitted event | `event.supervisor.attempt` |
//!
//! ## Span hierarchy
//!
//! Spans nest per-thread (see [`trace`]); a supervised sharded sweep
//! produces the tree
//!
//! ```text
//! supervisor.run
//! ├── session.plan            (per shard attempt)
//! ├── session.execute
//! │   └── session.record
//! ├── session.persist
//! └── session.merge
//! ```
//!
//! while a plain warm probe is `session.plan → session.probe
//! [→ session.execute → session.record → session.persist]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

pub use metrics::{HistogramSnapshot, MetricsSnapshot};
pub use trace::{Field, JsonlWriter, MemorySink, SpanGuard, TraceSink};

const STATE_OFF: u8 = 0;
const STATE_ON: u8 = 1;

/// The one global switch every instrumentation site loads.
static STATE: AtomicU8 = AtomicU8::new(STATE_OFF);

/// Is a telemetry pipeline installed?  One relaxed atomic load — this is
/// the whole per-site cost when telemetry is off, and the guard callers
/// use before building event fields.
#[inline(always)]
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// What [`install`] should set up.
#[derive(Default)]
pub struct ObsConfig {
    sink: Option<SinkChoice>,
}

enum SinkChoice {
    File(std::path::PathBuf),
    Custom(Arc<dyn TraceSink>),
}

impl ObsConfig {
    /// Metrics registry only — no trace records written anywhere.
    pub fn metrics_only() -> Self {
        ObsConfig { sink: None }
    }

    /// Metrics plus a JSONL trace written to `path` (the CLI's
    /// `--trace-out FILE`).
    pub fn trace_file(path: impl AsRef<Path>) -> Self {
        ObsConfig { sink: Some(SinkChoice::File(path.as_ref().to_path_buf())) }
    }

    /// Metrics plus a caller-provided sink (tests use [`MemorySink`]).
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Self {
        ObsConfig { sink: Some(SinkChoice::Custom(sink)) }
    }
}

/// Keeps telemetry on; dropping it flushes the sink and switches
/// everything off.  Holds the install serialization lock for its whole
/// lifetime, so tests observing metrics can't interleave.
pub struct ObsGuard {
    _serial: MutexGuard<'static, ()>,
}

fn serial_lock() -> &'static Mutex<()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL.get_or_init(|| Mutex::new(()))
}

/// Switch telemetry on for the lifetime of the returned guard.
///
/// Clears the metrics registry (each install observes from zero),
/// installs the configured trace sink (writing the schema header line if
/// any) and flips the global state.  Errors only when a trace file can't
/// be created.
pub fn install(config: ObsConfig) -> std::io::Result<ObsGuard> {
    let serial = serial_lock().lock().unwrap_or_else(|p| p.into_inner());
    metrics::registry().clear();
    let sink: Option<Arc<dyn TraceSink>> = match config.sink {
        None => None,
        Some(SinkChoice::File(path)) => Some(Arc::new(JsonlWriter::create(path)?)),
        Some(SinkChoice::Custom(sink)) => Some(sink),
    };
    *trace::sink_slot().write().expect("trace sink poisoned") = sink;
    STATE.store(STATE_ON, Ordering::Relaxed);
    if trace::sink_slot().read().expect("trace sink poisoned").is_some() {
        trace::emit_header();
    }
    Ok(ObsGuard { _serial: serial })
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        STATE.store(STATE_OFF, Ordering::Relaxed);
        let sink = trace::sink_slot().write().expect("trace sink poisoned").take();
        if let Some(sink) = sink {
            sink.flush();
        }
    }
}

/// Add `delta` to a named counter.  No-op unless [`enabled`].
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        metrics::registry().counter_add(name, delta);
    }
}

/// Set a named gauge.  No-op unless [`enabled`].
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    if enabled() {
        metrics::registry().gauge_set(name, value);
    }
}

/// Record one observation into a named histogram.  No-op unless
/// [`enabled`].
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        metrics::registry().observe(name, value);
    }
}

/// Emit a structured point event (and bump `event.<name>`).  No-op unless
/// [`enabled`].  Callers that allocate while building `fields` should
/// pre-check [`enabled`] to keep the disabled path allocation-free.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, Field)]) {
    if enabled() {
        trace::emit_event(name, fields);
    }
}

/// Open a timing span; the scope closes (and records) when the returned
/// guard drops.  When telemetry is off this returns an inert guard
/// after the single state load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    trace::start_span(name)
}

/// Snapshot every metric recorded since the current [`install`].
pub fn snapshot() -> MetricsSnapshot {
    metrics::registry().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_do_nothing_and_installs_observe_from_zero() {
        {
            let _g = install(ObsConfig::metrics_only()).unwrap();
            counter_add("t.count", 2);
            observe("t.hist", 8);
            gauge_set("t.gauge", 5);
            let s = snapshot();
            assert_eq!(s.counter("t.count"), 2);
            assert_eq!(s.histogram("t.hist").unwrap().sum, 8);
        }
        assert!(!enabled());
        counter_add("t.count", 100); // ignored: nothing installed
        let _g = install(ObsConfig::metrics_only()).unwrap();
        assert_eq!(snapshot().counter("t.count"), 0);
    }

    #[test]
    fn spans_and_events_reach_the_sink_with_nesting() {
        let sink = MemorySink::shared();
        let lines = {
            let _g = install(ObsConfig::with_sink(sink.clone())).unwrap();
            let outer = span("outer");
            assert!(outer.id() > 0);
            {
                let _inner = span("inner");
                event("unit.ping", &[("n", Field::from(3u64))]);
            }
            drop(outer);
            // span durations also reached the metrics registry
            let snap = snapshot();
            assert_eq!(snap.histogram("span.outer.us").unwrap().count, 1);
            assert_eq!(snap.histogram("span.inner.us").unwrap().count, 1);
            assert_eq!(snap.counter("event.unit.ping"), 1);
            sink.lines()
        };
        // header + event + inner span + outer span
        assert_eq!(lines.len(), 4);
        let header = json::parse(&lines[0]).unwrap();
        assert_eq!(header.get("kind").unwrap().as_str(), Some("header"));
        let ev = json::parse(&lines[1]).unwrap();
        assert_eq!(ev.get("name").unwrap().as_str(), Some("unit.ping"));
        let inner = json::parse(&lines[2]).unwrap();
        let outer = json::parse(&lines[3]).unwrap();
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner"));
        // the inner span and the event are parented to the enclosing spans
        assert_eq!(inner.get("parent").unwrap().as_u64(), outer.get("id").unwrap().as_u64());
        assert_eq!(ev.get("parent").unwrap().as_u64(), inner.get("id").unwrap().as_u64());
    }
}
