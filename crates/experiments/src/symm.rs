//! EXP-L32 / EXP-L33 — Procedure `SymmRV(n, d, δ)` (Lemmas 3.2 and 3.3).
//!
//! Lemma 3.2: two agents starting from symmetric nodes `u, v` with
//! `δ ≥ d = Shrink(u, v)` in a graph of size `n` meet while executing
//! `SymmRV(n, d, δ)`.  Lemma 3.3: the procedure takes at most
//! `T(n, d, δ) = (d + δ)(n − 1)^d (M + 2) + 2(M + 1)` rounds.
//!
//! The experiment sweeps the symmetric workloads, picks symmetric pairs, runs
//! the procedure with several delays `≥ Shrink` and records the measured
//! rendezvous time against the Lemma 3.3 bound.

use anonrv_core::bounds::symm_rv_bound;
use anonrv_core::symm_rv::SymmRv;
use anonrv_plan::PairOrbits;
use anonrv_sim::{EngineConfig, Stic};
use anonrv_store::{Provenance, Store, SweepSession};
use anonrv_uxs::{LengthRule, PseudorandomUxs, UxsProvider};

use crate::report::{
    compression_note, fmt_opt_rounds, fmt_ratio, fmt_rounds, PlanCompression, Table,
};
use crate::runner::{distinct_in_order, run_cases_planned, Aggregate, Case, RunRecord};
use crate::suite::{
    all_symmetric_pairs, symmetric_delays, symmetric_pairs, symmetric_workloads, Scale,
};

/// Configuration of the `SymmRV` experiment.
#[derive(Debug, Clone)]
pub struct SymmConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Maximum symmetric pairs per instance (ignored under
    /// [`SymmConfig::exhaustive`]).
    pub max_pairs: usize,
    /// Skip pairs with `Shrink(u, v)` above this value (the procedure's cost
    /// is exponential in `d`; this is the knob EXPERIMENTS.md reports on).
    pub max_shrink: usize,
    /// Skip instances with more nodes than this (the `(n − 1)^d (M + 2)`
    /// factor of Lemma 3.3 makes large instances impractically slow).
    pub max_nodes: usize,
    /// UXS length rule used by the procedure.
    pub uxs_rule: LengthRule,
    /// Evaluate **every** symmetric pair instead of capping at
    /// [`SymmConfig::max_pairs`] ([`all_symmetric_pairs`]); the pair-orbit
    /// planner makes the uncapped tables affordable, and exhaustive tables
    /// are what exposes feasibility boundaries without sampling artifacts.
    /// The `Shrink` and node-count gates still apply (they bound *cost per
    /// case*, not coverage).
    pub exhaustive: bool,
    /// Optional persistent plan-cache directory (`anonrv-store`): pair
    /// orbits are loaded instead of recomputed and trajectory timelines are
    /// preloaded instead of re-recorded; everything computed cold is written
    /// back.  The compression note reports the resulting hit/miss traffic.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for SymmConfig {
    fn default() -> Self {
        SymmConfig {
            scale: Scale::Quick,
            max_pairs: 4,
            max_shrink: 2,
            max_nodes: 14,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
            exhaustive: false,
            cache_dir: None,
        }
    }
}

impl SymmConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        SymmConfig {
            scale: Scale::Full,
            max_pairs: 6,
            max_shrink: 2,
            max_nodes: 16,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
            exhaustive: false,
            cache_dir: None,
        }
    }
}

/// Run the experiment and return the raw records.
pub fn collect(config: &SymmConfig) -> Vec<RunRecord> {
    collect_with_stats(config).0
}

/// A stable cache-key fragment for a [`LengthRule`] (part of the store
/// program key, so it must distinguish every parameterisation and never
/// change format gratuitously).
fn uxs_rule_key(rule: &LengthRule) -> String {
    match rule {
        LengthRule::Cubic { c, min_len } => format!("cubic-{c}-{min_len}"),
        LengthRule::Quadratic { c, min_len } => format!("quad-{c}-{min_len}"),
        LengthRule::Fixed(len) => format!("fixed-{len}"),
    }
}

/// Run the experiment and return the raw records plus the per-instance
/// pair-orbit planning statistics.
///
/// `SymmRV(n, d, δ)` is one deterministic program per `(d, δ)` parameter
/// pair, so the sweep groups its cases by `(Shrink, δ)`: every group runs
/// through one [`SweepSession`] sharing the instance's pair-orbit partition
/// (probed or computed once) — the partition collapses view-equivalent
/// cases onto one representative each, the session preloads trajectory
/// timelines from the store (and persists new recordings back), and rayon
/// fans out over the representative merges before the outcomes are
/// broadcast back.
pub fn collect_with_stats(config: &SymmConfig) -> (Vec<RunRecord>, Vec<PlanCompression>) {
    let workloads = symmetric_workloads(config.scale);
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let store = config.cache_dir.as_ref().map(|dir| {
        // the user explicitly asked for persistence: an unusable cache dir
        // is a configuration error, not something to silently run cold over
        Store::open(dir).unwrap_or_else(|e| panic!("cannot open cache dir {}: {e}", dir.display()))
    });
    let mut records = Vec::new();
    let mut stats = Vec::new();
    for w in &workloads {
        let n = w.n();
        if n > config.max_nodes {
            continue;
        }
        let m = uxs.length(n);
        let selected = if config.exhaustive {
            all_symmetric_pairs(&w.graph)
        } else {
            symmetric_pairs(&w.graph, config.max_pairs)
        };
        let pairs: Vec<_> = selected
            .into_iter()
            .filter(|p| p.shrink >= 1 && p.shrink <= config.max_shrink)
            .collect();
        // (shrink, delta) groups, in deterministic first-seen order
        let groups = distinct_in_order(
            pairs
                .iter()
                .flat_map(|p| symmetric_delays(p.shrink).into_iter().map(|d| (p.shrink, d))),
        );
        let oracle = anonrv_core::FeasibilityOracle::new(&w.graph);
        let (orbits, orbits_prov) = match &store {
            Some(store) => store.orbits(&w.graph),
            None => (PairOrbits::compute(&w.graph), Provenance::Cold),
        };
        let mut instance = PlanCompression::new(w.label.clone(), n * n, orbits.num_pair_classes());
        for (shrink, delta) in groups {
            // pairs with this Shrink share the whole delay set, so the
            // group key alone determines membership
            let group: Vec<_> = pairs.iter().filter(|p| p.shrink == shrink).collect();
            let bound = symm_rv_bound(n, shrink, delta, m);
            let horizon = bound.saturating_add(delta).saturating_add(1);
            let program = SymmRv::new(n, shrink, delta, &uxs);
            // the program key pins every parameter the program closes over,
            // the UXS length rule included — two configs differing only in
            // `uxs_rule` run different programs and must never share
            // timelines (the store verifies everything else, but program
            // identity is exactly the caller's contract)
            let program_key = format!(
                "symm-rv-n{n}-d{shrink}-delta{delta}-uxs{}",
                uxs_rule_key(&config.uxs_rule)
            );
            let mut session = SweepSession::with_orbits(
                store.as_ref(),
                &orbits,
                orbits_prov,
                &w.graph,
                &program,
                &program_key,
                EngineConfig::with_horizon(horizon),
            );
            let cases: Vec<Case<'_>> = group
                .iter()
                .map(|p| Case {
                    family: w.family.clone(),
                    label: w.label.clone(),
                    graph: &w.graph,
                    stic: Stic::new(p.u, p.v, delta),
                    horizon,
                    bound: Some(bound),
                })
                .collect();
            records.extend(run_cases_planned(&cases, &mut session, &oracle));
            instance.absorb(&session.stats());
        }
        stats.push(instance);
    }
    (records, stats)
}

/// Run the experiment as a report table (one row per instance, aggregated).
pub fn run(config: &SymmConfig) -> Table {
    let (records, stats) = collect_with_stats(config);
    let mut table = Table::new(
        "EXP-L32",
        "SymmRV on symmetric STICs with delta >= Shrink (Lemmas 3.2 / 3.3)",
        &[
            "family",
            "instance",
            "n",
            "STICs",
            "met",
            "within T(n,d,delta)",
            "max time",
            "max bound",
            "max time / bound",
        ],
    );
    let mut labels: Vec<String> = records.iter().map(|r| r.label.clone()).collect();
    labels.dedup();
    for label in labels {
        let group: Vec<&RunRecord> = records.iter().filter(|r| r.label == label).collect();
        let owned: Vec<RunRecord> = group.iter().map(|r| (*r).clone()).collect();
        let agg = Aggregate::of(&owned);
        let max_bound = group.iter().filter_map(|r| r.bound).max();
        table.push_row([
            group[0].family.clone(),
            label.clone(),
            group[0].n.to_string(),
            agg.total.to_string(),
            agg.met.to_string(),
            agg.within_bound.to_string(),
            fmt_opt_rounds(agg.max_time),
            max_bound.map(fmt_rounds).unwrap_or_else(|| "-".to_string()),
            match (agg.max_time, max_bound) {
                (Some(t), Some(b)) => fmt_ratio(t, b),
                _ => "-".to_string(),
            },
        ]);
    }
    table.push_note(
        "Paper: every STIC in this sweep is feasible (delta >= Shrink), so 'met' must equal \
         'STICs' and every measured time must respect the Lemma 3.3 bound \
         ('within T' = 'STICs', ratio <= 1).",
    );
    table.push_note(compression_note(&stats));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_symmetric_stic_with_sufficient_delay_meets_within_the_bound() {
        let config = SymmConfig { max_pairs: 2, max_shrink: 2, ..SymmConfig::default() };
        let records = collect(&config);
        assert!(!records.is_empty());
        for r in &records {
            assert!(
                r.met,
                "SymmRV must meet on {} pair ({}, {}) delta {}",
                r.label, r.u, r.v, r.delta
            );
            assert!(r.within_bound(), "Lemma 3.3 bound violated on {:?}", r);
            assert_eq!(r.class, "symmetric-feasible");
        }
    }

    #[test]
    fn exhaustive_mode_supersets_the_capped_sweep_and_caches_warm() {
        let capped = SymmConfig { max_pairs: 2, max_shrink: 1, ..SymmConfig::default() };
        let exhaustive = SymmConfig { exhaustive: true, ..capped.clone() };
        let (capped_records, _) = collect_with_stats(&capped);
        let (all_records, all_stats) = collect_with_stats(&exhaustive);
        assert!(all_records.len() > capped_records.len(), "exhaustive must drop the cap");
        // every capped record appears identically in the exhaustive run
        for r in &capped_records {
            assert!(all_records.contains(r), "capped record missing from exhaustive: {r:?}");
        }
        // without a cache dir, every timeline is recorded cold, unsharded
        for s in &all_stats {
            assert_eq!(s.cache_hits, 0);
            assert!(s.cache_misses > 0, "{}: a sweep records timelines", s.label);
            assert_eq!(s.shard, None);
        }

        // a persistent cache dir: second run is warm and bit-identical
        let dir =
            std::env::temp_dir().join(format!("anonrv-symm-cache-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cached = SymmConfig { cache_dir: Some(dir.clone()), ..exhaustive };
        let (cold_records, cold_stats) = collect_with_stats(&cached);
        let (warm_records, warm_stats) = collect_with_stats(&cached);
        assert_eq!(warm_records, cold_records, "warm and cold runs must be bit-identical");
        assert_eq!(cold_records, all_records, "the cache must not change results");
        assert!(cold_stats.iter().all(|s| s.cache_hits == 0));
        for (cold, warm) in cold_stats.iter().zip(&warm_stats) {
            assert_eq!(warm.cache_misses, 0, "{}: warm run recorded timelines", warm.label);
            assert_eq!(warm.cache_hits, cold.cache_misses, "{}: hit/miss mismatch", warm.label);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_table_aggregates_by_instance() {
        let config = SymmConfig { max_pairs: 1, max_shrink: 1, ..SymmConfig::default() };
        let table = run(&config);
        assert!(table.num_rows() >= 1);
        for (met, total) in
            table.column_values("met").iter().zip(table.column_values("STICs").iter())
        {
            assert_eq!(met, total);
        }
    }
}
