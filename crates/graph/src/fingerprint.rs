//! Canonical structural hashing of port-labelled graphs.
//!
//! The persistent plan cache (`anonrv-store`) keys every on-disk artifact —
//! automorphism groups, pair-orbit partitions, recorded trajectory timelines,
//! sweep outcome tables — by the graph they were derived from.  All of those
//! artifacts are functions of the graph *as indexed*: a timeline is "the walk
//! of the agent started on node 7", an automorphism is a permutation of the
//! concrete indices.  The cache key must therefore distinguish two
//! isomorphic-but-relabelled presentations of the same abstract graph, and
//! the right notion of "canonical" is a canonical serialisation of the
//! indexed adjacency structure, **not** an isomorphism-invariant certificate.
//!
//! [`PortGraph::canonical_hash`] hashes exactly the information that
//! determines every simulation and planning artifact: the node count and, in
//! index order, every node's `succ` table `(port -> (neighbour, entry
//! port))`.  Two [`PortGraph`] values compare equal iff they hash equally
//! (modulo the astronomically unlikely 128-bit collision), and the generators
//! are deterministic, so `oriented_torus(16, 16)` hashes identically across
//! processes, machines and sessions — which is what makes the on-disk cache
//! shardable across processes.
//!
//! The hash is a 128-bit FNV-1a variant, chosen because it is trivially
//! portable (no dependencies, no endianness traps — every integer is folded
//! in as little-endian bytes) and collision-resistant enough for a cache
//! keyed by a handful of graphs.  It makes no cryptographic claim: the store
//! additionally checksums every payload and verifies the embedded hash on
//! load, so a collision degrades to a cache miss, never to wrong results
//! being served.

use crate::graph::PortGraph;

/// Seed and prime of 128-bit FNV-1a.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher over little-endian integer words.
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }
}

impl PortGraph {
    /// Canonical 128-bit hash of the indexed adjacency structure: the
    /// content-address the persistent plan cache keys its artifacts by.
    ///
    /// Equal graphs (same node indexing, same port tables) always hash
    /// equally; structurally different graphs hash differently up to 128-bit
    /// collisions.  The hash deliberately covers the *indexed* presentation —
    /// see the [`crate::fingerprint`] module docs for why an
    /// isomorphism-invariant certificate would be the wrong cache key.
    ///
    /// ```
    /// use anonrv_graph::generators::{oriented_ring, oriented_torus};
    ///
    /// let a = oriented_torus(4, 4).unwrap();
    /// let b = oriented_torus(4, 4).unwrap();
    /// assert_eq!(a.canonical_hash(), b.canonical_hash());
    /// assert_ne!(a.canonical_hash(), oriented_ring(16).unwrap().canonical_hash());
    /// ```
    pub fn canonical_hash(&self) -> u128 {
        let mut h = Fnv128::new();
        // domain-separation tag + layout version: bump if the hashed
        // presentation ever changes, so stale cache files can never be
        // mistaken for current ones
        h.write_bytes(b"anonrv-portgraph-v1");
        h.write_u64(self.num_nodes() as u64);
        for v in self.nodes() {
            h.write_u64(self.degree(v) as u64);
            for p in 0..self.degree(v) {
                let (w, q) = self.succ(v, p);
                h.write_u64(w as u64);
                h.write_u64(q as u64);
            }
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use crate::generators::{grid, oriented_ring, oriented_torus, path};

    #[test]
    fn equal_graphs_hash_equally_and_deterministically() {
        let a = oriented_torus(3, 4).unwrap();
        let b = oriented_torus(3, 4).unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        assert_eq!(a.canonical_hash(), a.canonical_hash());
    }

    #[test]
    fn different_structures_hash_differently() {
        let hashes = [
            oriented_ring(12).unwrap().canonical_hash(),
            oriented_torus(3, 4).unwrap().canonical_hash(),
            oriented_torus(4, 3).unwrap().canonical_hash(),
            grid(3, 4).unwrap().canonical_hash(),
            path(12).unwrap().canonical_hash(),
            oriented_ring(13).unwrap().canonical_hash(),
        ];
        let mut distinct = hashes.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), hashes.len(), "same-size families must not collide");
    }

    #[test]
    fn the_hash_is_pinned_across_sessions() {
        // The on-disk cache depends on this value being stable across
        // processes and releases; a change here invalidates every existing
        // cache (which is exactly what bumping the tag is for — do it
        // consciously).
        assert_eq!(oriented_ring(6).unwrap().canonical_hash(), {
            let again = oriented_ring(6).unwrap();
            again.canonical_hash()
        });
    }
}
