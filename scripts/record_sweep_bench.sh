#!/usr/bin/env bash
# Record the batch-engine sweep perf numbers as BENCH_sweep.json (repo
# root): the symm-sweep workload (all (u, v) pairs x delta in {0..4} on
# oriented_torus(16, 16)) through the trajectory-memoized batch engine
# versus per-call lockstep simulation.
#
# Usage: scripts/record_sweep_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_sweep.json}"
cargo run --release -p anonrv-bench --bin sweep_timing -- "$OUT"
