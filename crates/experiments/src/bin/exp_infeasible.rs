//! EXP-L31: infeasibility of symmetric STICs with delay below the Shrink
//! threshold (Lemma 3.1).  Pass `--full` for the EXPERIMENTS.md
//! configuration and `--exhaustive` to gather evidence for every symmetric
//! pair instead of the `max_pairs` cap (exhaustive tables pin the
//! infeasibility boundary exactly).

use anonrv_experiments::infeasible;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut config = if full {
        infeasible::InfeasibleConfig::full()
    } else {
        infeasible::InfeasibleConfig::default()
    };
    config.exhaustive = args.iter().any(|a| a == "--exhaustive");
    println!("{}", infeasible::run(&config));
}
