//! Coverage verification for substitute UXS sequences.
//!
//! Because the crate substitutes the paper's (existence-only) polynomial UXS
//! with a pseudorandom sequence, every experiment verifies up front that the
//! sequence actually explores the graphs it will be used on.  This module is
//! that verifier.

use anonrv_graph::PortGraph;

use crate::sequence::{covers, Uxs};

/// Result of verifying a sequence against one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Number of nodes of the verified graph.
    pub n: usize,
    /// Whether the application covered all nodes from *every* start node.
    pub covered: bool,
    /// Start nodes from which coverage failed (empty when `covered`).
    pub failing_starts: Vec<usize>,
}

/// `true` iff the application of `uxs` covers all of `g` from every start
/// node — the property the paper's UXS guarantees by definition.
pub fn covers_from_all(g: &PortGraph, uxs: &Uxs) -> bool {
    g.nodes().all(|v| covers(g, uxs, v))
}

/// Verify a sequence on a family of graphs; one report per graph.
pub fn verify_on_family<'a, I>(graphs: I, uxs: &Uxs) -> Vec<CoverageReport>
where
    I: IntoIterator<Item = &'a PortGraph>,
{
    graphs
        .into_iter()
        .map(|g| {
            let failing: Vec<usize> = g.nodes().filter(|&v| !covers(g, uxs, v)).collect();
            CoverageReport {
                n: g.num_nodes(),
                covered: failing.is_empty(),
                failing_starts: failing,
            }
        })
        .collect()
}

/// The shortest prefix of `uxs` whose application from every start node of
/// `g` still covers all nodes, found by binary search.  Returns `None` when
/// even the full sequence does not cover.  Used by the UXS-length ablation.
pub fn shortest_covering_prefix(g: &PortGraph, uxs: &Uxs) -> Option<usize> {
    if !covers_from_all(g, uxs) {
        return None;
    }
    let (mut lo, mut hi) = (0usize, uxs.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if covers_from_all(g, &uxs.prefix(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{PseudorandomUxs, UxsProvider};
    use anonrv_graph::generators::{
        hypercube, kary_tree, lollipop, oriented_ring, oriented_torus, qh_hat, random_connected,
        symmetric_double_tree,
    };

    #[test]
    fn default_provider_covers_the_core_families() {
        let p = PseudorandomUxs::default();
        let graphs = vec![
            oriented_ring(9).unwrap(),
            oriented_torus(3, 4).unwrap(),
            hypercube(4).unwrap(),
            symmetric_double_tree(2, 3).unwrap().0,
            lollipop(4, 4).unwrap(),
            kary_tree(3, 3).unwrap(),
            qh_hat(2).unwrap().graph,
        ];
        for g in &graphs {
            let uxs = p.sequence(g.num_nodes());
            assert!(
                covers_from_all(g, &uxs),
                "default UXS must cover the {}-node graph from every start",
                g.num_nodes()
            );
        }
        let reports = verify_on_family(graphs.iter(), &p.sequence(40));
        assert!(reports.iter().all(|r| r.covered));
    }

    #[test]
    fn default_provider_covers_random_graphs() {
        let p = PseudorandomUxs::default();
        for seed in 0..10u64 {
            let g = random_connected(14, 6, seed).unwrap();
            let uxs = p.sequence(g.num_nodes());
            assert!(covers_from_all(&g, &uxs), "seed {seed}");
        }
    }

    #[test]
    fn verify_on_family_reports_failures() {
        let ring = oriented_ring(8).unwrap();
        let too_short = Uxs::new(vec![0, 0]);
        let reports = verify_on_family(std::iter::once(&ring), &too_short);
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].covered);
        assert!(!reports[0].failing_starts.is_empty());
        assert_eq!(reports[0].n, 8);
    }

    #[test]
    fn shortest_prefix_is_minimal() {
        let g = oriented_ring(6).unwrap();
        let p = PseudorandomUxs::default();
        let uxs = p.sequence(6);
        let len = shortest_covering_prefix(&g, &uxs).expect("full sequence covers");
        assert!(covers_from_all(&g, &uxs.prefix(len)));
        if len > 0 {
            assert!(!covers_from_all(&g, &uxs.prefix(len - 1)));
        }
    }

    #[test]
    fn shortest_prefix_returns_none_when_sequence_insufficient() {
        let g = oriented_ring(12).unwrap();
        assert_eq!(shortest_covering_prefix(&g, &Uxs::new(vec![0, 1])), None);
    }
}
