//! EXP-RAND — the randomized baseline the paper's conclusion points to:
//! "the synchronous randomized counterpart of our problem is straightforward,
//! and follows from the fact that two random walks meet with high probability
//! in time polynomial in the size of the graph".
//!
//! The experiment contrasts, on symmetric starting positions with delay `0`
//! (the configuration that is *infeasible* for deterministic anonymous
//! agents, Lemma 3.1), the deterministic verdict with the measured behaviour
//! of two independently seeded lazy random walks, and reports how the mean
//! meeting time grows with the size of the graph.

use anonrv_core::feasibility::is_feasible;
use anonrv_core::random_baseline::estimate_random_rendezvous;
use anonrv_graph::generators::{oriented_ring, oriented_torus};
use anonrv_graph::PortGraph;
use anonrv_sim::{Round, Stic};

use crate::report::{fmt_opt_rounds, Table};
use crate::runner::par_map;

/// One instance of the randomized-baseline sweep.
#[derive(Debug, Clone)]
pub struct RandomCase {
    /// Instance label.
    pub label: String,
    /// The graph.
    pub graph: PortGraph,
    /// Symmetric starting pair.
    pub pair: (usize, usize),
}

/// Configuration of the randomized-baseline experiment.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Trials per instance.
    pub trials: u32,
    /// Simulation horizon per trial.
    pub horizon: Round,
    /// Base seed.
    pub seed: u64,
    /// Ring sizes swept.
    pub ring_sizes: Vec<usize>,
    /// Torus dimensions swept.
    pub torus_dims: Vec<(usize, usize)>,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            trials: 8,
            horizon: 200_000,
            seed: 0xDEC0DE,
            ring_sizes: vec![6, 10, 16],
            torus_dims: vec![(3, 3), (4, 4)],
        }
    }
}

impl RandomConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        RandomConfig {
            trials: 24,
            horizon: 2_000_000,
            seed: 0xDEC0DE,
            ring_sizes: vec![6, 10, 16, 24, 32],
            torus_dims: vec![(3, 3), (4, 4), (6, 6)],
        }
    }
}

fn cases(config: &RandomConfig) -> Vec<RandomCase> {
    let mut out = Vec::new();
    for &n in &config.ring_sizes {
        out.push(RandomCase {
            label: format!("ring-{n}"),
            graph: oriented_ring(n).unwrap(),
            pair: (0, n / 2),
        });
    }
    for &(r, c) in &config.torus_dims {
        out.push(RandomCase {
            label: format!("torus-{r}x{c}"),
            graph: oriented_torus(r, c).unwrap(),
            pair: (0, r * c / 2),
        });
    }
    out
}

/// Run the experiment as a report table.
pub fn run(config: &RandomConfig) -> Table {
    let mut table = Table::new(
        "EXP-RAND",
        "Randomized baseline: independent lazy random walks on deterministically infeasible STICs",
        &[
            "instance",
            "n",
            "pair",
            "deterministic verdict (delta = 0)",
            "trials",
            "met",
            "mean time",
            "max time",
        ],
    );
    let rows = par_map(cases(config), |case| {
        let stic = Stic::new(case.pair.0, case.pair.1, 0);
        let feasible = is_feasible(&case.graph, case.pair.0, case.pair.1, 0);
        let estimate = estimate_random_rendezvous(
            &case.graph,
            &stic,
            config.horizon,
            config.trials,
            config.seed,
        );
        (case.label.clone(), case.graph.num_nodes(), case.pair, feasible, estimate)
    });
    for (label, n, pair, feasible, estimate) in rows {
        table.push_row([
            label,
            n.to_string(),
            format!("({}, {})", pair.0, pair.1),
            if feasible { "feasible".to_string() } else { "infeasible (Lemma 3.1)".to_string() },
            estimate.trials.to_string(),
            estimate.met.to_string(),
            fmt_opt_rounds(estimate.mean_time),
            fmt_opt_rounds(estimate.max_time),
        ]);
    }
    table.push_note(
        "Paper (conclusion): randomization sidesteps the impossibility — two independent random \
         walks meet with high probability in time polynomial in n, even from symmetric positions \
         with delay 0 where every deterministic algorithm must fail.  Expected outcome: verdict \
         'infeasible' yet met = trials on every row, with the mean time growing polynomially.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_random_baseline_meets_where_determinism_cannot() {
        let config = RandomConfig {
            trials: 4,
            horizon: 100_000,
            ring_sizes: vec![6, 8],
            torus_dims: vec![(3, 3)],
            ..RandomConfig::default()
        };
        let table = run(&config);
        assert_eq!(table.num_rows(), 3);
        for row in &table.rows {
            assert_eq!(row[3], "infeasible (Lemma 3.1)");
            assert_eq!(row[4], row[5], "every trial must meet: {row:?}");
        }
    }
}
