//! Label schemes for the `AsymmRV` substitute.
//!
//! The paper uses the log-space rendezvous procedure of
//! Czyzowicz–Kosowski–Pelc (2012) as a black box for nonsymmetric starting
//! positions (Proposition 3.1).  Our substitute (DESIGN.md §4.2) is
//! label-based: each agent first computes, *through the navigator interface
//! alone*, a fixed-length bit label of its starting position; two agents with
//! different labels then break symmetry with the explore/wait schedule of
//! [`crate::asymm_rv`].
//!
//! Requirements on a scheme:
//!
//! 1. the computation takes the **same number of rounds for both agents**
//!    (a function of `n` only), so the delay between them is preserved;
//! 2. it ends back at the agent's starting node;
//! 3. the label has a **fixed length** given `n`;
//! 4. symmetric starting nodes get equal labels (automatic: the computation
//!    only uses view-determined observations);
//! 5. nonsymmetric starting nodes *should* get different labels — this is the
//!    property that cannot be guaranteed cheaply in general (that is the hard
//!    content of the substituted paper) and is therefore verified per
//!    instance by [`LabelScheme::labels_distinct`] in the experiment and test
//!    suites.

use anonrv_graph::{NodeId, PortGraph};
use anonrv_sim::{Navigator, Round, Stop};
use anonrv_uxs::{fingerprint_pairs, PseudorandomUxs, UxsProvider};

/// Number of bits in every label produced by the schemes of this module.
pub const LABEL_BITS: usize = 64;

fn bits_of(x: u64) -> Vec<bool> {
    (0..LABEL_BITS).map(|i| (x >> i) & 1 == 1).collect()
}

/// A way for an agent to compute a fixed-length label of its starting
/// position using only model-allowed observations.
pub trait LabelScheme: Sync {
    /// Compute the label agent-side.  Must end at the starting node and take
    /// exactly [`LabelScheme::label_rounds`] rounds.
    fn compute_label(&self, nav: &mut dyn Navigator, n: usize) -> Result<Vec<bool>, Stop>;

    /// The exact number of rounds [`LabelScheme::compute_label`] takes for
    /// assumed size `n` (identical for both agents).
    fn label_rounds(&self, n: usize) -> Round;

    /// Number of label bits (fixed; [`LABEL_BITS`] for the built-in schemes).
    fn label_len(&self, _n: usize) -> usize {
        LABEL_BITS
    }

    /// Analysis-side label of a node (must equal what
    /// [`LabelScheme::compute_label`] would compute agent-side from that
    /// node).  Used by verification helpers and experiments.
    fn label_of(&self, g: &PortGraph, v: NodeId, n: usize) -> Vec<bool>;

    /// Analysis-side check that two starting nodes receive different labels —
    /// the per-instance verification required by the substitution.
    fn labels_distinct(&self, g: &PortGraph, u: NodeId, v: NodeId, n: usize) -> bool {
        self.label_of(g, u, n) != self.label_of(g, v, n)
    }

    /// Scheme name for reports.
    fn name(&self) -> &str;
}

/// The default, polynomial-round scheme: the label is a 64-bit fingerprint of
/// the *trail transcript* of the UXS application from the starting node (the
/// sequence of degrees and entry ports the agent observes while walking
/// `R(u)` and back).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrailSignature {
    /// UXS provider shared with the rest of the algorithm.
    pub uxs: PseudorandomUxs,
}

impl TrailSignature {
    /// Scheme using a specific UXS provider.
    pub fn new(uxs: PseudorandomUxs) -> Self {
        TrailSignature { uxs }
    }
}

impl LabelScheme for TrailSignature {
    fn compute_label(&self, nav: &mut dyn Navigator, n: usize) -> Result<Vec<bool>, Stop> {
        let y = self.uxs.sequence(n);
        let mut observations: Vec<(usize, usize)> = Vec::with_capacity(y.len() + 2);
        observations.push((usize::MAX, nav.degree()));

        // UXS application, recording (entry port, degree) at every step
        let mut entry = nav.move_via(0)?;
        observations.push((entry, nav.degree()));
        let mut backtrack = Vec::with_capacity(y.len() + 1);
        backtrack.push(entry);
        for &a in y.terms() {
            let p = (entry + a) % nav.degree();
            entry = nav.move_via(p)?;
            observations.push((entry, nav.degree()));
            backtrack.push(entry);
        }
        // return to the start
        for &q in backtrack.iter().rev() {
            nav.move_via(q)?;
        }
        Ok(bits_of(fingerprint_pairs(&observations)))
    }

    fn label_rounds(&self, n: usize) -> Round {
        2 * (self.uxs.length(n) as Round + 1)
    }

    fn label_of(&self, g: &PortGraph, v: NodeId, n: usize) -> Vec<bool> {
        let y = self.uxs.sequence(n);
        bits_of(anonrv_uxs::transcript_fingerprint(g, &y, v))
    }

    fn name(&self) -> &str {
        "trail-signature"
    }
}

/// The exact (but exponential-round) scheme: the label is a 64-bit
/// fingerprint of the canonical encoding of the truncated view to depth
/// `n − 1`, computed by a depth-first traversal with backtracking.  Distinct
/// for *every* nonsymmetric pair (up to fingerprint collisions), but the
/// computation visits every walk of length `≤ n − 1`, so it is only usable on
/// small, low-degree graphs.  The computation is padded to the worst-case
/// duration so that requirement (1) above still holds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactViewLabel;

impl ExactViewLabel {
    /// Worst-case number of rounds of the depth-first view computation for a
    /// graph of size `n`: every walk of length `i ≤ n − 1` is traversed out
    /// and back, and there are at most `(n − 1)^i` of them... summed as a
    /// geometric series and doubled for the backtracking.
    fn dfs_round_bound(n: usize) -> Round {
        let depth = n.saturating_sub(1);
        let mut total: Round = 0;
        let mut walks: Round = 1;
        for _ in 0..depth {
            walks = walks.saturating_mul(n.saturating_sub(1) as Round);
            total = total.saturating_add(walks.saturating_mul(2));
        }
        total
    }

    fn dfs_view(
        nav: &mut dyn Navigator,
        depth: usize,
        observations: &mut Vec<(usize, usize)>,
    ) -> Result<(), Stop> {
        observations.push((usize::MAX.wrapping_sub(depth), nav.degree()));
        if depth == 0 {
            return Ok(());
        }
        let degree = nav.degree();
        for p in 0..degree {
            let entry = nav.move_via(p)?;
            observations.push((p, entry));
            Self::dfs_view(nav, depth - 1, observations)?;
            nav.move_via(entry)?;
        }
        Ok(())
    }

    /// Analysis-side mirror of [`ExactViewLabel::dfs_view`]: produces exactly
    /// the observation sequence the agent would record from `v`.
    fn dfs_view_analysis(
        g: &PortGraph,
        v: NodeId,
        depth: usize,
        observations: &mut Vec<(usize, usize)>,
    ) {
        observations.push((usize::MAX.wrapping_sub(depth), g.degree(v)));
        if depth == 0 {
            return;
        }
        for p in 0..g.degree(v) {
            let (w, entry) = g.succ(v, p);
            observations.push((p, entry));
            Self::dfs_view_analysis(g, w, depth - 1, observations);
        }
    }
}

impl LabelScheme for ExactViewLabel {
    fn compute_label(&self, nav: &mut dyn Navigator, n: usize) -> Result<Vec<bool>, Stop> {
        let start_time = nav.local_time();
        let mut observations = Vec::new();
        Self::dfs_view(nav, n.saturating_sub(1), &mut observations)?;
        // pad to the graph-independent worst case
        let elapsed = nav.local_time() - start_time;
        let budget = Self::dfs_round_bound(n);
        if elapsed < budget {
            nav.wait(budget - elapsed)?;
        }
        Ok(bits_of(fingerprint_pairs(&observations)))
    }

    fn label_rounds(&self, n: usize) -> Round {
        Self::dfs_round_bound(n)
    }

    fn label_of(&self, g: &PortGraph, v: NodeId, n: usize) -> Vec<bool> {
        let mut observations = Vec::new();
        Self::dfs_view_analysis(g, v, n.saturating_sub(1), &mut observations);
        bits_of(fingerprint_pairs(&observations))
    }

    fn name(&self) -> &str {
        "exact-view"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{lollipop, oriented_ring, oriented_torus, random_connected};
    use anonrv_graph::symmetry::OrbitPartition;
    use anonrv_sim::{record_trace, AgentProgram};

    fn agent_side_label<S: LabelScheme>(
        scheme: &S,
        g: &PortGraph,
        start: NodeId,
        n: usize,
    ) -> (Vec<bool>, Round) {
        let result = std::sync::Mutex::new(Vec::new());
        let program = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            let label = scheme.compute_label(nav, n)?;
            *result.lock().unwrap() = label;
            Ok(())
        };
        let (trace, stats) =
            record_trace(g, &program as &dyn AgentProgram, start, Round::MAX, 1 << 22);
        assert!(trace.terminated);
        assert_eq!(trace.final_position(), start, "label computation must end at the start");
        (result.into_inner().unwrap(), stats.rounds - 1)
    }

    #[test]
    fn trail_signature_agent_side_matches_analysis_side() {
        let scheme = TrailSignature::default();
        let g = lollipop(4, 3).unwrap();
        let n = g.num_nodes();
        for v in [0usize, 3, 6] {
            let (agent_label, rounds) = agent_side_label(&scheme, &g, v, n);
            assert_eq!(agent_label, scheme.label_of(&g, v, n));
            assert_eq!(rounds, scheme.label_rounds(n));
            assert_eq!(agent_label.len(), LABEL_BITS);
        }
    }

    #[test]
    fn trail_signature_is_equal_for_symmetric_nodes() {
        let scheme = TrailSignature::default();
        let g = oriented_torus(3, 4).unwrap();
        let n = g.num_nodes();
        let reference = scheme.label_of(&g, 0, n);
        for v in g.nodes() {
            assert_eq!(scheme.label_of(&g, v, n), reference);
        }
    }

    #[test]
    fn trail_signature_distinguishes_the_experiment_workloads() {
        let scheme = TrailSignature::default();
        for seed in 0..8u64 {
            let g = random_connected(11, 5, seed).unwrap();
            let n = g.num_nodes();
            let partition = OrbitPartition::compute(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    if u < v && !partition.are_symmetric(u, v) {
                        assert!(
                            scheme.labels_distinct(&g, u, v, n),
                            "trail signature collision on seed {seed}, pair ({u},{v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_view_label_agent_side_is_deterministic_and_padded() {
        let scheme = ExactViewLabel;
        let g = oriented_ring(4).unwrap();
        let n = g.num_nodes();
        let (l0, r0) = agent_side_label(&scheme, &g, 0, n);
        let (l2, r2) = agent_side_label(&scheme, &g, 2, n);
        assert_eq!(r0, scheme.label_rounds(n));
        assert_eq!(r0, r2);
        // all ring nodes are symmetric: labels equal
        assert_eq!(l0, l2);
        // and the agent-side label matches the analysis-side one
        assert_eq!(l0, scheme.label_of(&g, 0, n));
    }

    #[test]
    fn exact_view_label_distinguishes_nonsymmetric_nodes() {
        let scheme = ExactViewLabel;
        let g = lollipop(3, 2).unwrap();
        let n = g.num_nodes();
        let partition = OrbitPartition::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u < v {
                    assert_eq!(
                        !partition.are_symmetric(u, v),
                        scheme.labels_distinct(&g, u, v, n),
                        "pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn scheme_names_are_stable() {
        assert_eq!(TrailSignature::default().name(), "trail-signature");
        assert_eq!(ExactViewLabel.name(), "exact-view");
        assert_eq!(TrailSignature::default().label_len(9), LABEL_BITS);
    }
}
