//! End-to-end test of the experiment harness: every experiment runs in its
//! quick configuration and produces the tables EXPERIMENTS.md records.

use anonrv_experiments::{run_all, Report};

fn quick_report() -> Report {
    run_all(false)
}

#[test]
fn every_experiment_produces_its_table() {
    let report = quick_report();
    let expected = [
        "EXP-FIG1",
        "EXP-SHRINK",
        "EXP-L31",
        "EXP-L32",
        "EXP-P31",
        "EXP-T31",
        "EXP-T41",
        "EXP-P41",
        "EXP-RAND",
        "EXP-OPEN",
        "EXP-ABL-UXS",
        "EXP-ABL-LABEL",
        "EXP-ABL-PAD",
    ];
    assert_eq!(report.tables.len(), expected.len());
    for id in expected {
        let table = report.table(id).unwrap_or_else(|| panic!("missing table {id}"));
        assert!(!table.headers.is_empty(), "{id} must have headers");
        assert!(table.num_rows() >= 1, "{id} must have at least one row");
        for row in &table.rows {
            assert_eq!(row.len(), table.headers.len(), "{id} row width mismatch");
        }
    }
}

#[test]
fn the_report_round_trips_through_json_and_renders_markdown() {
    let report = quick_report();
    let json = report.to_json();
    let back: Report = serde_json::from_str(&json).expect("report JSON must round-trip");
    assert_eq!(back, report);
    let rendered = report.render();
    assert!(rendered.contains("## EXP-T31"));
    assert!(rendered.contains("| k "));
}

#[test]
fn headline_outcomes_match_the_paper_claims_on_the_quick_suite() {
    let report = quick_report();

    // EXP-L32: every SymmRV STIC met within the bound
    let l32 = report.table("EXP-L32").unwrap();
    for (met, total) in l32.column_values("met").iter().zip(l32.column_values("STICs")) {
        assert_eq!(*met, total, "EXP-L32: every STIC must be met");
    }
    // EXP-P31: every AsymmRV STIC met
    let p31 = report.table("EXP-P31").unwrap();
    for (met, total) in p31.column_values("met").iter().zip(p31.column_values("STICs")) {
        assert_eq!(*met, total, "EXP-P31: every STIC must be met");
    }
    // EXP-T31: universal algorithm agrees with the characterisation on every row
    let t31 = report.table("EXP-T31").unwrap();
    assert!(t31.column_values("agreement").iter().all(|v| *v == "true"));
    // EXP-L31: no infeasible STIC was met
    let l31 = report.table("EXP-L31").unwrap();
    assert!(l31
        .column_values("UniversalRV met")
        .iter()
        .all(|v| *v == "false" || *v == "(not simulated)"));
    assert!(l31.column_values("classified infeasible").iter().all(|v| *v == "true"));
    assert!(l31.column_values("trajectory argument").iter().all(|v| *v == "true"));
    // EXP-T41: lower bound holds for every k
    let t41 = report.table("EXP-T41").unwrap();
    assert!(t41.column_values("meets all").iter().all(|v| *v == "true"));
    assert!(t41.column_values("truncated (< threshold) meets all").iter().all(|v| *v == "false"));
    // EXP-FIG1: the construction checks out
    let fig1 = report.table("EXP-FIG1").unwrap();
    assert!(fig1.column_values("fully symmetric").iter().all(|v| *v == "true"));
    assert!(fig1.column_values("4-regular").iter().all(|v| *v == "true"));
    // EXP-RAND: the randomized baseline meets where determinism cannot
    let rand = report.table("EXP-RAND").unwrap();
    for (met, trials) in rand.column_values("met").iter().zip(rand.column_values("trials")) {
        assert_eq!(*met, trials, "EXP-RAND: every randomized trial must meet");
    }
    // EXP-OPEN: the simplified algorithm meets on every row
    let open = report.table("EXP-OPEN").unwrap();
    assert!(open.column_values("AsymmOnly time").iter().all(|v| *v != "-"));
}
