//! EXP-P31 bench: the `AsymmRV` substitute on nonsymmetric STICs
//! (Proposition 3.1), plus the label-computation stage on its own.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_bench::{bench_uxs, expect_met};
use anonrv_core::asymm_rv::AsymmRv;
use anonrv_core::label::{LabelScheme, TrailSignature};
use anonrv_graph::generators::{caterpillar, lollipop, random_connected};
use anonrv_graph::PortGraph;
use anonrv_sim::{simulate, Round, Stic};

fn run(g: &PortGraph, u: usize, v: usize, delta: Round) -> Round {
    let uxs = bench_uxs();
    let scheme = TrailSignature::new(uxs);
    let program = AsymmRv::new(g.num_nodes(), delta.max(1), &scheme, &uxs);
    let horizon = program.full_duration() + delta + 1;
    let outcome = simulate(g, &program, &Stic::new(u, v, delta), horizon);
    expect_met(&outcome)
}

fn bench_asymm_rv(c: &mut Criterion) {
    let mut group = c.benchmark_group("asymm_rv");
    group.sample_size(20);
    let lp = lollipop(4, 3).unwrap();
    group.bench_function("lollipop-4-3 delta=1", |b| b.iter(|| run(black_box(&lp), 0, 6, 1)));
    let cat = caterpillar(5, 2).unwrap();
    group.bench_function("caterpillar-5-2 delta=3", |b| {
        b.iter(|| run(black_box(&cat), 0, cat.num_nodes() - 1, 3))
    });
    let rnd = random_connected(12, 6, 7).unwrap();
    group.bench_function("random-12 delta=0", |b| b.iter(|| run(black_box(&rnd), 0, 11, 0)));

    let scheme = TrailSignature::new(bench_uxs());
    group.bench_function("trail-signature label (analysis side, n=12)", |b| {
        b.iter(|| scheme.label_of(black_box(&rnd), 0, 12))
    });
    group.finish();
}

criterion_group!(benches, bench_asymm_rv);
criterion_main!(benches);
