//! Orbits of ordered node pairs under the port-preserving automorphism
//! group, with explicit canonicalisation witnesses.
//!
//! The construction leans on two structural facts about connected
//! port-labelled graphs:
//!
//! 1. **Port-rigidity.**  A port-preserving automorphism satisfies
//!    `φ(succ(v, p)) = succ(φ(v), p)` with matching entry ports, so `φ` is
//!    completely determined by the image of one node and can be grown (or
//!    refuted) by a single BFS propagation in `O(n·Δ)`.
//! 2. **Freeness.**  By the same rigidity, an automorphism fixing any node
//!    is the identity.  Hence the group acts freely on nodes *and* on
//!    ordered pairs: every node orbit and every pair orbit has exactly
//!    `|Aut(G)|` elements, and for each node `a` there is exactly one
//!    automorphism carrying `a` to its orbit representative.
//!
//! Freeness is what makes the pair partition cheap: the canonical form of
//! `(u, v)` is `(rep(u), π_u(v))` where `π_u` is the unique automorphism
//! with `π_u(u) = rep(u)`, so [`PairOrbits::class_of`] is two array lookups
//! and no `n²` table is ever materialised.  The node view-equivalence
//! partition ([`OrbitPartition`], colour refinement) serves as the candidate
//! filter: `φ(base) = w` is only possible when `w` has the same view as
//! `base`.
//!
//! # Design note: why pair-graph refinement is unsound (and orbits are not)
//!
//! An earlier design sketch proposed compressing all-pairs sweeps by colour
//! refinement over the **common-port pair graph** — the graph behind the
//! paper's `Shrink`, whose states are ordered pairs `(a, b)` and whose
//! transitions move *both* coordinates through the same port, `(a, b) →
//! (succ(a, p), succ(b, p))`.  Two pairs refined into the same class there
//! have isomorphic common-port reachability structure, so one might hope
//! they also share rendezvous outcomes.  **They do not**, and the
//! counterexample is small enough to keep in view:
//!
//! On the oriented 8-ring, consider the ordered pairs `(0, 2)` and `(0, 6)`.
//! Lockstep moves preserve the node difference, so both pairs have the same
//! common-port orbit shape and the same `Shrink = 2`; every pair-graph
//! refinement therefore leaves them in one class.  Now run the program
//! "always move clockwise" (port 0) on both agents.  From `(0, 2)` with
//! delay `δ = 2`, the later agent sits on node 2 while the earlier agent
//! walks `0 → 1 → 2`: they meet in round 2.  From `(0, 6)` with the same
//! delay, the earlier agent starts a 2-round head start *behind* a partner
//! that then flees clockwise at the same speed forever: they never meet.
//! Same refinement class, different outcomes — broadcasting one
//! representative's outcome to the other would be silently wrong.
//!
//! The root cause: rendezvous executions are **time-shifted**, not
//! port-lockstep.  The pair graph quantifies over runs where both agents
//! take the same port in the same round; a delayed execution pairs round `t`
//! of one agent with round `t − δ` of the other, which the common-port
//! structure does not constrain.  Any equivalence used to broadcast outcomes
//! must commute with *independent* per-agent dynamics — exactly what a
//! port-preserving automorphism does (`φ` maps each agent's whole walk
//! separately), and what no refinement of the lockstep pair product can
//! guarantee.
//!
//! The executable form of this note is pinned twice: the test
//! `ring_pairs_with_equal_shrink_but_opposite_orientation_stay_separate`
//! below checks that [`PairOrbits`] keeps `(0, 2)` and `(0, 6)` apart (no
//! rotation of the ring relates them — rotations preserve the *signed*
//! difference), and `tests/property_plan.rs` re-derives the outcome split
//! with a real simulation.  If you are tempted to resurrect pair-graph
//! refinement for a coarser compression, route it through the asynchronous
//! (independent-moves) pair product instead — see ROADMAP.md.

use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::{NodeId, PortGraph};

const UNSET: u32 = u32::MAX;

/// The full port-preserving automorphism group of a connected port-labelled
/// graph, as explicit permutations (the first entry is the identity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automorphisms {
    n: usize,
    /// `perms[k][v]` = image of `v` under automorphism `k`; `perms[0]` is
    /// the identity.
    perms: Vec<Vec<u32>>,
    /// Inverse permutations, same indexing.
    inv: Vec<Vec<u32>>,
}

impl Automorphisms {
    /// Compute the group of `g` by rigid propagation from node `0` to every
    /// view-equivalent candidate image.
    pub fn compute(g: &PortGraph) -> Self {
        let n = g.num_nodes();
        assert!(n > 0, "automorphisms of the empty graph are not defined");
        assert!(n <= u32::MAX as usize, "node count exceeds the index width");
        let partition = OrbitPartition::compute(g);
        let base = 0;
        let mut perms = Vec::new();
        for w in 0..n {
            if partition.class_of(w) != partition.class_of(base) {
                continue;
            }
            if let Some(phi) = propagate(g, base, w) {
                perms.push(phi);
            }
        }
        debug_assert!(perms[0].iter().enumerate().all(|(v, &x)| v == x as usize));
        let inv = perms
            .iter()
            .map(|p| {
                let mut inv = vec![0u32; n];
                for (v, &x) in p.iter().enumerate() {
                    inv[x as usize] = v as u32;
                }
                inv
            })
            .collect();
        Automorphisms { n, perms, inv }
    }

    /// Rebuild the group from explicit permutations (the deserialisation
    /// path of the persistent plan cache), verifying **every** claimed
    /// permutation against `g` before accepting it.
    ///
    /// The checks are exactly the guarantees [`Automorphisms::compute`]
    /// establishes: the first entry is the identity, every entry is a
    /// bijection on `0..n`, every entry preserves `succ` with matching entry
    /// ports (a genuine port-preserving automorphism), no entry appears
    /// twice, and the collection is the *full* group (same order as a fresh
    /// candidate scan would find — checked cheaply through freeness: the
    /// images of node 0 under a valid set are pairwise distinct, so
    /// distinctness plus validity suffice for group membership, and
    /// completeness is the caller's contract, re-verified by the caller's
    /// checksum).  Cost is `O(k·n·Δ)` — the same as one propagation per
    /// surviving candidate, without the colour-refinement preparation.
    ///
    /// Errors name the first violated invariant; cache loaders treat any
    /// error as a miss and fall back to [`Automorphisms::compute`].
    pub fn from_permutations(g: &PortGraph, perms: Vec<Vec<u32>>) -> Result<Self, String> {
        let n = g.num_nodes();
        assert!(n > 0, "automorphisms of the empty graph are not defined");
        if perms.is_empty() {
            return Err("the group contains at least the identity".into());
        }
        let mut images_of_base = vec![false; n];
        for (k, p) in perms.iter().enumerate() {
            if p.len() != n {
                return Err(format!("permutation {k}: length {} != n = {n}", p.len()));
            }
            let mut seen = vec![false; n];
            for (v, &img) in p.iter().enumerate() {
                let img = img as usize;
                if img >= n {
                    return Err(format!("permutation {k}: image {img} out of range"));
                }
                if seen[img] {
                    return Err(format!("permutation {k}: image {img} repeated (not a bijection)"));
                }
                seen[img] = true;
                if g.degree(v) != g.degree(img) {
                    return Err(format!("permutation {k}: degree mismatch at node {v}"));
                }
                for port in 0..g.degree(v) {
                    let (w, q) = g.succ(v, port);
                    let (w2, q2) = g.succ(img, port);
                    if q != q2 || w2 != p[w] as usize {
                        return Err(format!(
                            "permutation {k}: succ not preserved at node {v} port {port}"
                        ));
                    }
                }
            }
            if k == 0 && p.iter().enumerate().any(|(v, &img)| v != img as usize) {
                return Err("the first permutation must be the identity".into());
            }
            // freeness: distinct automorphisms differ at node 0
            let base_img = p[0] as usize;
            if images_of_base[base_img] {
                return Err(format!("permutation {k}: duplicate group element"));
            }
            images_of_base[base_img] = true;
        }
        let inv = perms
            .iter()
            .map(|p| {
                let mut inv = vec![0u32; n];
                for (v, &x) in p.iter().enumerate() {
                    inv[x as usize] = v as u32;
                }
                inv
            })
            .collect();
        Ok(Automorphisms { n, perms, inv })
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Order of the group (`1` for rigid graphs).  By freeness it divides
    /// the node count.
    pub fn order(&self) -> usize {
        self.perms.len()
    }

    /// Image of `v` under automorphism `k`.
    #[inline]
    pub fn apply(&self, k: usize, v: NodeId) -> NodeId {
        self.perms[k][v] as usize
    }

    /// Image of `v` under the inverse of automorphism `k`.
    #[inline]
    pub fn apply_inv(&self, k: usize, v: NodeId) -> NodeId {
        self.inv[k][v] as usize
    }

    /// The permutations themselves (the identity first).
    pub fn permutations(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.perms.iter().map(|p| p.as_slice())
    }
}

/// Grow the unique automorphism with `φ(base) = w`, or refute it.  One BFS
/// over the graph: every edge is checked for matching far ports and the
/// image assignment is checked for injectivity, so a `Some` result is a
/// genuine port-preserving automorphism.
fn propagate(g: &PortGraph, base: NodeId, w: NodeId) -> Option<Vec<u32>> {
    if g.degree(base) != g.degree(w) {
        return None;
    }
    let n = g.num_nodes();
    let mut phi = vec![UNSET; n];
    let mut image_used = vec![false; n];
    phi[base] = w as u32;
    image_used[w] = true;
    let mut stack = vec![base];
    while let Some(v) = stack.pop() {
        let fv = phi[v] as usize;
        for p in 0..g.degree(v) {
            let (a, q) = g.succ(v, p);
            let (b, q2) = g.succ(fv, p);
            if q != q2 {
                return None;
            }
            if phi[a] == UNSET {
                if g.degree(a) != g.degree(b) || image_used[b] {
                    return None;
                }
                phi[a] = b as u32;
                image_used[b] = true;
                stack.push(a);
            } else if phi[a] as usize != b {
                return None;
            }
        }
    }
    // connectivity makes the map total; `image_used` made it injective
    debug_assert!(phi.iter().all(|&x| x != UNSET));
    Some(phi)
}

/// The partition of all `n²` **ordered** node pairs into orbits of the
/// automorphism group, with the canonicalisation witnesses needed to
/// broadcast simulation outcomes (meeting nodes included) from a class
/// representative to every member.
///
/// Class identifiers are laid out as `rep_index(u) · n + c`: the canonical
/// form of `(u, v)` is the pair `(rep(u), π_u(v))` where `rep(u)` is the
/// smallest node in `u`'s orbit and `π_u` the unique automorphism carrying
/// `u` there.  Every class therefore contains exactly one pair whose first
/// coordinate is an orbit representative, and that pair *is* the class
/// representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairOrbits {
    n: usize,
    autos: Automorphisms,
    /// Smallest image of each node under the group (its orbit
    /// representative).
    node_rep: Vec<u32>,
    /// Dense index of each orbit-representative node (`UNSET` elsewhere).
    rep_dense: Vec<u32>,
    /// Dense index → representative node.
    node_reps: Vec<u32>,
    /// `canon[a]` = index of the unique automorphism with
    /// `perms[canon[a]][a] = node_rep[a]`.
    canon: Vec<u32>,
}

impl PairOrbits {
    /// Compute the pair-orbit partition of `g`.
    pub fn compute(g: &PortGraph) -> Self {
        Self::from_automorphisms(Automorphisms::compute(g))
    }

    /// Build the partition from a precomputed automorphism group.
    pub fn from_automorphisms(autos: Automorphisms) -> Self {
        let n = autos.num_nodes();
        let mut node_rep = vec![0u32; n];
        let mut canon = vec![0u32; n];
        for a in 0..n {
            let (mut best, mut best_k) = (autos.perms[0][a], 0usize);
            for k in 1..autos.order() {
                let img = autos.perms[k][a];
                if img < best {
                    best = img;
                    best_k = k;
                }
            }
            node_rep[a] = best;
            canon[a] = best_k as u32;
        }
        let mut rep_dense = vec![UNSET; n];
        let mut node_reps = Vec::new();
        for v in 0..n {
            if node_rep[v] as usize == v {
                rep_dense[v] = node_reps.len() as u32;
                node_reps.push(v as u32);
            }
        }
        PairOrbits { n, autos, node_rep, rep_dense, node_reps, canon }
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The automorphism group the partition is built on.
    pub fn automorphisms(&self) -> &Automorphisms {
        &self.autos
    }

    /// Order of the automorphism group — by freeness also the size of
    /// *every* node orbit and every pair class.
    pub fn group_order(&self) -> usize {
        self.autos.order()
    }

    /// Number of node orbits (`n / group_order`).
    pub fn num_node_orbits(&self) -> usize {
        self.node_reps.len()
    }

    /// Number of ordered-pair classes (`n² / group_order`).
    pub fn num_pair_classes(&self) -> usize {
        self.node_reps.len() * self.n
    }

    /// Size of every pair class (uniform, by freeness of the action).
    pub fn class_size(&self) -> usize {
        self.autos.order()
    }

    /// The compression ratio `n² / num_pair_classes` (= the group order).
    pub fn compression(&self) -> f64 {
        (self.n * self.n) as f64 / self.num_pair_classes() as f64
    }

    /// Orbit representative (smallest image) of node `u`.
    #[inline]
    pub fn node_representative(&self, u: NodeId) -> NodeId {
        self.node_rep[u] as usize
    }

    /// Class identifier of the ordered pair `(u, v)`, in
    /// `0..num_pair_classes` — two array lookups, no `n²` table.
    ///
    /// Pairs related by an automorphism share a class (and therefore share
    /// every rendezvous outcome); unrelated pairs never do:
    ///
    /// ```
    /// use anonrv_graph::generators::oriented_ring;
    /// use anonrv_plan::PairOrbits;
    ///
    /// let g = oriented_ring(8).unwrap();
    /// let orbits = PairOrbits::compute(&g);
    /// // the 8 rotations collapse the 64 ordered pairs to 8 classes
    /// assert_eq!(orbits.num_pair_classes(), 8);
    /// // (0, 2) and (3, 5) are the same pair up to rotation ...
    /// assert_eq!(orbits.class_of(0, 2), orbits.class_of(3, 5));
    /// // ... while (0, 6) walks the other way around and stays separate
    /// assert_ne!(orbits.class_of(0, 2), orbits.class_of(0, 6));
    /// // the canonical representative is itself a member of the class
    /// let (r, c) = orbits.representative(orbits.class_of(3, 5));
    /// assert_eq!(orbits.class_of(r, c), orbits.class_of(3, 5));
    /// ```
    #[inline]
    pub fn class_of(&self, u: NodeId, v: NodeId) -> usize {
        let k = self.canon[u] as usize;
        self.rep_dense[self.node_rep[u] as usize] as usize * self.n
            + self.autos.perms[k][v] as usize
    }

    /// The canonical representative pair of a class.
    #[inline]
    pub fn representative(&self, class: usize) -> (NodeId, NodeId) {
        (self.node_reps[class / self.n] as usize, class % self.n)
    }

    /// All member pairs of a class (each exactly once, the representative
    /// among them).
    pub fn members(&self, class: usize) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let (r, c) = self.representative(class);
        self.autos.perms.iter().map(move |p| (p[r] as usize, p[c] as usize))
    }

    /// `true` iff `(u, v)` and `(u2, v2)` lie in the same pair orbit.
    pub fn are_equivalent(&self, u: NodeId, v: NodeId, u2: NodeId, v2: NodeId) -> bool {
        self.class_of(u, v) == self.class_of(u2, v2)
    }

    /// Map a node of `(u, ·)`'s world into the canonical world of `u`'s
    /// class representative (`π_u`, the witnessing automorphism).
    #[inline]
    pub fn to_canonical(&self, u: NodeId, x: NodeId) -> NodeId {
        self.autos.apply(self.canon[u] as usize, x)
    }

    /// Map a node of the canonical world back into `(u, ·)`'s world
    /// (`π_u⁻¹`) — this is what lets a planned sweep reconstruct member
    /// meeting nodes bit-identically.
    #[inline]
    pub fn from_canonical(&self, u: NodeId, x: NodeId) -> NodeId {
        self.autos.apply_inv(self.canon[u] as usize, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{
        hypercube, lollipop, oriented_ring, oriented_torus, path, qh_hat, random_connected,
        symmetric_double_tree,
    };

    fn assert_group(g: &PortGraph, expected_order: usize) -> Automorphisms {
        let autos = Automorphisms::compute(g);
        assert_eq!(autos.order(), expected_order, "group order");
        let n = g.num_nodes();
        for k in 0..autos.order() {
            // genuine port-preserving automorphism
            for v in 0..n {
                for p in 0..g.degree(v) {
                    let (w, q) = g.succ(v, p);
                    let (w2, q2) = g.succ(autos.apply(k, v), p);
                    assert_eq!(w2, autos.apply(k, w));
                    assert_eq!(q2, q);
                }
                assert_eq!(autos.apply_inv(k, autos.apply(k, v)), v);
            }
            // freeness: only the identity has a fixed point
            if k != 0 {
                assert!((0..n).all(|v| autos.apply(k, v) != v), "non-identity with fixed point");
            }
        }
        autos
    }

    #[test]
    fn ring_group_is_the_rotations() {
        assert_group(&oriented_ring(9).unwrap(), 9);
    }

    #[test]
    fn torus_group_is_the_translations() {
        assert_group(&oriented_torus(3, 4).unwrap(), 12);
    }

    #[test]
    fn hypercube_group_is_the_bit_translations() {
        assert_group(&hypercube(3).unwrap(), 8);
    }

    #[test]
    fn double_tree_group_contains_the_mirror() {
        let (g, mirror) = symmetric_double_tree(2, 2).unwrap();
        let autos = assert_group(&g, 2);
        let k = 1;
        for v in g.nodes() {
            assert_eq!(autos.apply(k, v), mirror[v]);
        }
    }

    #[test]
    fn rigid_graphs_have_the_trivial_group() {
        assert_group(&lollipop(4, 3).unwrap(), 1);
        assert_group(&path(5).unwrap(), 1);
        assert_group(&random_connected(10, 5, 3).unwrap(), 1);
    }

    #[test]
    fn pair_classes_partition_all_ordered_pairs() {
        for g in [
            oriented_ring(7).unwrap(),
            oriented_torus(3, 4).unwrap(),
            hypercube(3).unwrap(),
            symmetric_double_tree(2, 2).unwrap().0,
            lollipop(4, 3).unwrap(),
            qh_hat(2).unwrap().graph,
        ] {
            let n = g.num_nodes();
            let orbits = PairOrbits::compute(&g);
            assert_eq!(orbits.num_pair_classes() * orbits.class_size(), n * n);
            let mut seen = vec![0usize; n * n];
            for class in 0..orbits.num_pair_classes() {
                let (r, c) = orbits.representative(class);
                assert_eq!(orbits.class_of(r, c), class, "representative is self-canonical");
                for (a, b) in orbits.members(class) {
                    assert_eq!(orbits.class_of(a, b), class);
                    seen[a * n + b] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "every ordered pair in exactly one class");
        }
    }

    #[test]
    fn canonical_maps_witness_the_class() {
        let g = oriented_torus(4, 4).unwrap();
        let orbits = PairOrbits::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let (r, c) = orbits.representative(orbits.class_of(u, v));
                assert_eq!(orbits.to_canonical(u, u), r);
                assert_eq!(orbits.to_canonical(u, v), c);
                assert_eq!(orbits.from_canonical(u, r), u);
                assert_eq!(orbits.from_canonical(u, c), v);
            }
        }
    }

    #[test]
    fn torus_16x16_compresses_all_pairs_to_256_classes() {
        let g = oriented_torus(16, 16).unwrap();
        let orbits = PairOrbits::compute(&g);
        assert_eq!(orbits.group_order(), 256);
        assert_eq!(orbits.num_pair_classes(), 256);
        assert_eq!(orbits.compression(), 256.0);
    }

    #[test]
    fn from_permutations_round_trips_and_rejects_forgeries() {
        let g = oriented_torus(3, 4).unwrap();
        let autos = Automorphisms::compute(&g);
        let perms: Vec<Vec<u32>> = autos.permutations().map(|p| p.to_vec()).collect();
        let rebuilt = Automorphisms::from_permutations(&g, perms.clone()).unwrap();
        assert_eq!(rebuilt, autos);
        // pair orbits built on the rebuilt group are identical too
        assert_eq!(PairOrbits::from_automorphisms(rebuilt), PairOrbits::from_automorphisms(autos));

        // empty set
        assert!(Automorphisms::from_permutations(&g, vec![]).is_err());
        // identity not first
        let mut reordered = perms.clone();
        reordered.swap(0, 1);
        assert!(Automorphisms::from_permutations(&g, reordered).is_err());
        // wrong length
        let mut truncated = perms.clone();
        truncated[1].pop();
        assert!(Automorphisms::from_permutations(&g, truncated).is_err());
        // image out of range
        let mut oob = perms.clone();
        oob[1][3] = 99;
        assert!(Automorphisms::from_permutations(&g, oob).is_err());
        // not a bijection
        let mut dup = perms.clone();
        dup[1][3] = dup[1][4];
        assert!(Automorphisms::from_permutations(&g, dup).is_err());
        // a bijection that is not an automorphism (swap two images)
        let mut forged = perms.clone();
        forged[1].swap(3, 4);
        assert!(Automorphisms::from_permutations(&g, forged).is_err());
        // duplicate group element
        let mut doubled = perms.clone();
        doubled.push(perms[1].clone());
        assert!(Automorphisms::from_permutations(&g, doubled).is_err());
        // valid permutations of a *different* graph are rejected against g
        let other = oriented_torus(4, 3).unwrap();
        let foreign: Vec<Vec<u32>> =
            Automorphisms::compute(&other).permutations().map(|p| p.to_vec()).collect();
        assert!(Automorphisms::from_permutations(&g, foreign).is_err());
    }

    /// The module-level counterexample: on the oriented 8-ring, `(0, 2)` and
    /// `(0, 6)` are indistinguishable to common-port pair-graph refinement
    /// (node-difference is preserved by lockstep moves, both have
    /// `Shrink = 2`), yet their outcomes differ — so the planner must keep
    /// them in different classes, and it does (they are not related by any
    /// rotation).
    #[test]
    fn ring_pairs_with_equal_shrink_but_opposite_orientation_stay_separate() {
        let g = oriented_ring(8).unwrap();
        assert_eq!(anonrv_graph::shrink::shrink(&g, 0, 2), Some(2));
        assert_eq!(anonrv_graph::shrink::shrink(&g, 0, 6), Some(2));
        let orbits = PairOrbits::compute(&g);
        assert!(!orbits.are_equivalent(0, 2, 0, 6));
        // ...while genuinely rotated pairs collapse
        assert!(orbits.are_equivalent(0, 2, 3, 5));
    }
}
