//! Pluggable sources of (candidate) universal exploration sequences.

use std::collections::HashMap;
use std::sync::RwLock;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::sequence::Uxs;

/// How the sequence length is chosen as a function of the assumed graph size
/// `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthRule {
    /// `max(min_len, c · n³)` — conservative default, comfortably above the
    /// cover time of the walk on every family in the experiment suites.
    Cubic {
        /// Multiplier `c`.
        c: usize,
        /// Lower bound on the length.
        min_len: usize,
    },
    /// `max(min_len, c · n² · ⌈log₂ n⌉)` — shorter sequences for the
    /// ablation study.
    Quadratic {
        /// Multiplier `c`.
        c: usize,
        /// Lower bound on the length.
        min_len: usize,
    },
    /// A fixed length, independent of `n`.
    Fixed(usize),
}

impl LengthRule {
    /// The sequence length for assumed size `n`.
    pub fn length_for(self, n: usize) -> usize {
        match self {
            LengthRule::Cubic { c, min_len } => (c * n * n * n).max(min_len),
            LengthRule::Quadratic { c, min_len } => {
                let log = usize::BITS as usize - n.max(2).leading_zeros() as usize;
                (c * n * n * log).max(min_len)
            }
            LengthRule::Fixed(len) => len,
        }
    }
}

/// A deterministic source of the sequence `Y(n)`.  Both agents instantiate
/// the same provider (it is part of the algorithm, not of the input), so they
/// always agree on `Y(n)` — exactly as in the paper, where `Y(n)` is a fixed
/// object associated with the size `n`.
pub trait UxsProvider: Send + Sync {
    /// The sequence `Y(n)` for assumed graph size `n`.
    fn sequence(&self, n: usize) -> Uxs;

    /// The length `M` of `Y(n)` (must agree with [`UxsProvider::sequence`]).
    fn length(&self, n: usize) -> usize {
        self.sequence(n).len()
    }
}

/// The default substitute construction: a fixed-seed ChaCha8 pseudorandom
/// sequence of terms in `{0, 1, 2}`.  See DESIGN.md §4.1.
///
/// Terms are drawn from `{0, 1, 2}` rather than `{0, 1}` so that on nodes of
/// degree ≥ 3 the walk can turn in every direction; on degree-2 and degree-1
/// nodes the modulo in the application rule reduces them appropriately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PseudorandomUxs {
    /// Seed shared by the two agents (a constant of the algorithm).
    pub seed: u64,
    /// Length rule.
    pub rule: LengthRule,
}

impl Default for PseudorandomUxs {
    fn default() -> Self {
        // `c = 2` rather than `c = 1`: the length-n³ walk of the vendored
        // ChaCha8 stream misses one node of the quick-suite lollipop-4-3
        // instance; doubling the cubic budget restores full coverage on every
        // shipped workload (asserted by the ablation experiment's tests).
        PseudorandomUxs { seed: 0xC0FF_EE00_5EED, rule: LengthRule::Cubic { c: 2, min_len: 32 } }
    }
}

impl PseudorandomUxs {
    /// Default provider with a custom length rule.
    pub fn with_rule(rule: LengthRule) -> Self {
        PseudorandomUxs { rule, ..Default::default() }
    }

    /// Provider producing fixed-length sequences (ablation experiments).
    pub fn fixed_length(len: usize) -> Self {
        Self::with_rule(LengthRule::Fixed(len))
    }
}

impl UxsProvider for PseudorandomUxs {
    fn sequence(&self, n: usize) -> Uxs {
        let len = self.rule.length_for(n);
        // the seed mixes in n so that different sizes give independent sequences,
        // but the construction depends on nothing else
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Uxs::new((0..len).map(|_| rng.gen_range(0..3usize)).collect())
    }

    fn length(&self, n: usize) -> usize {
        self.rule.length_for(n)
    }
}

/// Memoising wrapper: computing `Y(n)` is cheap but `UniversalRV` requests it
/// once per phase, so the cache keeps repeated simulations allocation-free.
///
/// The cache is an `RwLock` rather than a `Mutex`: rayon sweeps call
/// [`UxsProvider::sequence`] from every worker at once, and after the first
/// miss per `n` all of those calls are pure reads — serialising them behind
/// an exclusive lock put the whole sweep on one core.  Reads now take the
/// shared lock; the exclusive lock is taken only to insert a missing entry
/// (with a re-check under the write lock for the race where two threads
/// miss the same `n` simultaneously).
pub struct CachedProvider<P: UxsProvider> {
    inner: P,
    cache: RwLock<HashMap<usize, Uxs>>,
}

impl<P: UxsProvider> CachedProvider<P> {
    /// Wrap a provider.
    pub fn new(inner: P) -> Self {
        CachedProvider { inner, cache: RwLock::new(HashMap::new()) }
    }
}

impl<P: UxsProvider> UxsProvider for CachedProvider<P> {
    fn sequence(&self, n: usize) -> Uxs {
        if let Some(hit) = self.cache.read().expect("uxs cache poisoned").get(&n) {
            return hit.clone();
        }
        let mut cache = self.cache.write().expect("uxs cache poisoned");
        cache.entry(n).or_insert_with(|| self.inner.sequence(n)).clone()
    }

    fn length(&self, n: usize) -> usize {
        self.inner.length(n)
    }
}

impl<P: UxsProvider + Default> Default for CachedProvider<P> {
    fn default() -> Self {
        CachedProvider::new(P::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_rules() {
        assert_eq!(LengthRule::Fixed(7).length_for(100), 7);
        assert_eq!(LengthRule::Cubic { c: 2, min_len: 10 }.length_for(3), 54);
        assert_eq!(LengthRule::Cubic { c: 2, min_len: 100 }.length_for(3), 100);
        let q = LengthRule::Quadratic { c: 1, min_len: 1 }.length_for(8);
        assert_eq!(q, 8 * 8 * 4); // ceil(log2 8) == 4 with this bit-length formula
    }

    #[test]
    fn provider_is_deterministic_and_size_dependent() {
        let p = PseudorandomUxs::default();
        assert_eq!(p.sequence(5), p.sequence(5));
        assert_ne!(p.sequence(5), p.sequence(6));
        assert_eq!(p.sequence(5).len(), p.length(5));
        assert_eq!(p.length(5), 250); // default cubic rule: 2 · 5³
    }

    #[test]
    fn terms_stay_in_range() {
        let p = PseudorandomUxs::default();
        assert!(p.sequence(8).terms().iter().all(|&a| a < 3));
    }

    #[test]
    fn cached_provider_agrees_with_inner() {
        let cached = CachedProvider::new(PseudorandomUxs::default());
        let direct = PseudorandomUxs::default();
        assert_eq!(cached.sequence(6), direct.sequence(6));
        // second call hits the cache and stays equal
        assert_eq!(cached.sequence(6), direct.sequence(6));
        assert_eq!(cached.length(6), direct.length(6));
    }

    #[test]
    fn fixed_length_constructor() {
        let p = PseudorandomUxs::fixed_length(40);
        assert_eq!(p.sequence(3).len(), 40);
        assert_eq!(p.sequence(30).len(), 40);
    }

    /// Counts how often the wrapped provider actually computes a sequence.
    struct CountingProvider {
        inner: PseudorandomUxs,
        computed: std::sync::atomic::AtomicUsize,
    }

    impl UxsProvider for CountingProvider {
        fn sequence(&self, n: usize) -> Uxs {
            self.computed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.sequence(n)
        }
        fn length(&self, n: usize) -> usize {
            self.inner.length(n)
        }
    }

    /// Contention regression for the rayon-sweep pattern: many threads
    /// hammering `sequence()` on a handful of sizes must (a) all read the
    /// same sequences, and (b) compute each size's sequence exactly once —
    /// every later call is a shared-lock read.  (Before the `RwLock`
    /// read-fast path, every one of these calls serialised on an exclusive
    /// `Mutex`.)
    #[test]
    fn cached_provider_is_concurrently_correct_and_computes_each_size_once() {
        let provider = CachedProvider::new(CountingProvider {
            inner: PseudorandomUxs::fixed_length(64),
            computed: std::sync::atomic::AtomicUsize::new(0),
        });
        let sizes = [3usize, 5, 8, 13];
        let expected: Vec<Uxs> =
            sizes.iter().map(|&n| PseudorandomUxs::fixed_length(64).sequence(n)).collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let provider = &provider;
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..200 {
                        let which = (t + i) % sizes.len();
                        assert_eq!(provider.sequence(sizes[which]), expected[which]);
                    }
                });
            }
        });
        let computed = provider.inner.computed.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(computed, sizes.len(), "each size must be computed exactly once");
    }
}
