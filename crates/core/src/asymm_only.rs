//! The polynomial universal algorithm for *nonsymmetric* STICs that Section 4
//! of the paper sketches while discussing its open problem:
//!
//! > "a simplified algorithm working only for STICs `[(u, v), δ]` with
//! > asymmetric nodes `u, v`, which can be obtained from Algorithm
//! > `UniversalRV` by deleting the Procedure `SymmRV` in each phase, would
//! > indeed be polynomial in `n` and `δ`."
//!
//! [`AsymmOnlyUniversalRv`] is exactly that algorithm: it enumerates pairs
//! `(n, δ) = f⁻¹(P)` with the Cantor pairing of Section 3.2 and runs the
//! (substituted) `AsymmRV(n, δ)` in every phase, padded so both agents spend
//! the same number of rounds per phase.  It uses no a-priori knowledge, meets
//! every nonsymmetric STIC, and its running time is polynomial in `n + δ` —
//! the contrast with the exponential `UniversalRV` is measured by EXP-OPEN.

use anonrv_sim::{AgentProgram, Navigator, Round, Stop};
use anonrv_uxs::UxsProvider;

use crate::asymm_rv::AsymmRv;
use crate::label::LabelScheme;
use crate::pairing::{f, f_inv};

/// `UniversalRV` with the `SymmRV` part of every phase deleted: universal
/// over nonsymmetric STICs, polynomial in the size of the graph and the
/// delay.
pub struct AsymmOnlyUniversalRv<'a, L: LabelScheme> {
    /// Source of the UXS (shared by both agents by construction).
    pub uxs: &'a dyn UxsProvider,
    /// Label scheme used by the embedded `AsymmRV` substitute.
    pub scheme: &'a L,
    /// Optional cap on the number of phases (`None` = run forever, as in the
    /// paper).
    pub max_phases: Option<u64>,
}

impl<'a, L: LabelScheme> AsymmOnlyUniversalRv<'a, L> {
    /// Create the algorithm with no phase cap.
    pub fn new(uxs: &'a dyn UxsProvider, scheme: &'a L) -> Self {
        AsymmOnlyUniversalRv { uxs, scheme, max_phases: None }
    }

    /// Duration of the phase with parameters `(n, δ)`: the `AsymmRV(n, δ)`
    /// duration plus the equalising wait, `2 · (P(n, δ) + δ)` rounds.
    pub fn phase_rounds(&self, n: usize, delta: Round) -> Round {
        let asymm = AsymmRv::new(n, delta, self.scheme, self.uxs);
        2u128.saturating_mul(asymm.full_duration().saturating_add(delta))
    }

    /// Upper bound on the rounds needed to finish the phase with parameters
    /// `(n, δ)` — the sum of all phase durations up to `f(n, δ)`.  Unlike
    /// [`crate::universal_rv::UniversalRv::completion_horizon`] this bound is
    /// polynomial in `n + δ`.
    pub fn completion_horizon(&self, n: usize, delta: Round) -> Round {
        let final_phase = f(n as u64, delta.min(u64::MAX as Round).max(1) as u64);
        let mut total: Round = 0;
        for p in 1..=final_phase {
            let (n_p, delta_p) = f_inv(p);
            total = total.saturating_add(self.phase_rounds(n_p as usize, delta_p as Round));
        }
        total.saturating_add(delta).saturating_add(1)
    }
}

impl<L: LabelScheme> AgentProgram for AsymmOnlyUniversalRv<'_, L> {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut phase: u64 = 1;
        loop {
            let (n, delta) = f_inv(phase);
            let (n, delta) = (n as usize, delta as Round);
            // a graph has at least 2 nodes if the agents are to be apart
            if n >= 2 {
                let phase_start = nav.local_time();
                let asymm = AsymmRv::new(n, delta, self.scheme, self.uxs);
                let target = phase_start.saturating_add(self.phase_rounds(n, delta));
                asymm.execute(nav)?;
                let now = nav.local_time();
                if now < target {
                    nav.wait(target - now)?;
                }
            }
            if let Some(cap) = self.max_phases {
                if phase >= cap {
                    return Ok(());
                }
            }
            phase += 1;
        }
    }

    fn name(&self) -> &str {
        "AsymmOnlyUniversalRV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::classify;
    use crate::feasibility::SticClass;
    use crate::label::TrailSignature;
    use anonrv_graph::generators::{caterpillar, lollipop, star};
    use anonrv_graph::PortGraph;
    use anonrv_sim::{record_trace, simulate, Stic};
    use anonrv_uxs::{LengthRule, PseudorandomUxs};

    fn short_uxs() -> PseudorandomUxs {
        PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 })
    }

    fn meets(g: &PortGraph, stic: Stic) -> Option<Round> {
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let algo = AsymmOnlyUniversalRv::new(&uxs, &scheme);
        let horizon = algo.completion_horizon(g.num_nodes(), stic.delay.max(1));
        simulate(g, &algo, &stic, horizon).rendezvous_time()
    }

    #[test]
    fn meets_every_nonsymmetric_stic_of_a_small_suite() {
        for (g, u, v) in [
            (lollipop(3, 2).unwrap(), 0usize, 4usize),
            (star(4).unwrap(), 0, 2),
            (caterpillar(3, 1).unwrap(), 0, 5),
        ] {
            assert!(matches!(classify(&g, u, v, 0), SticClass::Nonsymmetric));
            for delta in [0u128, 1, 4] {
                assert!(
                    meets(&g, Stic::new(u, v, delta)).is_some(),
                    "({u}, {v}) with delay {delta}"
                );
            }
        }
    }

    #[test]
    fn phases_cost_both_agents_the_same_number_of_rounds() {
        let g = lollipop(4, 2).unwrap();
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let algo = AsymmOnlyUniversalRv { uxs: &uxs, scheme: &scheme, max_phases: Some(f(5, 2)) };
        let (ta, sa) = record_trace(&g, &algo, 0, Round::MAX, 1 << 24);
        let (tb, sb) = record_trace(&g, &algo, 5, Round::MAX, 1 << 24);
        assert!(ta.terminated && tb.terminated);
        assert_eq!(sa.rounds, sb.rounds);
    }

    #[test]
    fn the_completion_horizon_is_polynomial_shaped() {
        // the horizon of the asymmetric-only algorithm grows by low-degree
        // polynomial factors, in stark contrast with UniversalRV's
        // completion bound for the same parameters
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let algo = AsymmOnlyUniversalRv::new(&uxs, &scheme);
        let h4 = algo.completion_horizon(4, 1);
        let h8 = algo.completion_horizon(8, 1);
        let h16 = algo.completion_horizon(16, 1);
        assert!(h8 > h4 && h16 > h8);
        // doubling n multiplies the bound by far less than the exponential
        // blow-up of the full algorithm (ratio stays within a fixed power)
        assert!(h16 / h8 < (h8 / h4).saturating_mul(64));
        let full = crate::universal_rv::UniversalRv::new(&uxs, &scheme);
        assert!(full.completion_horizon(8, 7, 1) > algo.completion_horizon(8, 1));
    }
}
