//! EXP-RAND: the randomized baseline (independent random walks) on
//! deterministically infeasible STICs.  Pass `--full` for the EXPERIMENTS.md
//! configuration.

use anonrv_experiments::random_exp;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config =
        if full { random_exp::RandomConfig::full() } else { random_exp::RandomConfig::default() };
    println!("{}", random_exp::run(&config));
}
