//! EXP-T41 bench: the Theorem 4.1 machinery — symbolic family checks for
//! growing `k` and the explicit `Q̂_h` check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anonrv_core::lower_bound::{
    check_schedule_explicit, check_schedule_symbolic, ObliviousSchedule,
};
use anonrv_graph::generators::qh_hat;

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound");
    for k in [3usize, 5, 7] {
        let schedule = ObliviousSchedule::meeting_sweep(k);
        group.bench_with_input(BenchmarkId::new("symbolic meeting sweep", k), &k, |b, &k| {
            b.iter(|| check_schedule_symbolic(k, black_box(&schedule)))
        });
    }
    let q = qh_hat(4).unwrap();
    let schedule = ObliviousSchedule::meeting_sweep(1);
    group.bench_function("explicit check on Q̂_4 (k=1)", |b| {
        b.iter(|| check_schedule_explicit(black_box(&q), 1, black_box(&schedule)))
    });
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
