//! Perf-tracking bench for this repo's two hot paths:
//!
//! * **all-pairs feasibility** — the one-pass product-space sweep
//!   (`ShrinkEngine::all_pairs`, backing `shrink_all_symmetric_pairs` and
//!   `classify_all_pairs`) against the per-pair `HashMap` BFS baseline it
//!   replaced.  The baseline is timed on a 32-pair sample of
//!   `oriented_torus(16, 16)` (all 32 640 pairs would take minutes per
//!   iteration — which is the point); the engine is timed on the *full*
//!   n² = 65 536 pairs and is still over an order of magnitude faster.
//! * **short-horizon simulation** — a sweep of `simulate` calls through the
//!   single-threaded lockstep engine versus the threaded streaming engine.
//!
//! `scripts/record_allpairs_bench.sh` captures the same kernels as JSON
//! (BENCH_allpairs.json) for the long-term perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_core::classify_all_pairs;
use anonrv_graph::generators::{oriented_ring, oriented_torus};
use anonrv_graph::pairspace::ShrinkEngine;
use anonrv_graph::shrink::{shrink_all_symmetric_pairs, shrink_reference_bfs};
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_sim::{simulate_with, EngineConfig, Navigator, Round, Stic, Stop};

fn bench_all_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_shrink");
    group.sample_size(10);
    let torus = oriented_torus(16, 16).unwrap();

    group.bench_function("engine all_pairs torus-16x16 (65536 pairs)", |b| {
        b.iter(|| ShrinkEngine::new(black_box(&torus)).all_pairs())
    });
    group.bench_function("shrink_all_symmetric_pairs torus-16x16 (32640 pairs)", |b| {
        b.iter(|| shrink_all_symmetric_pairs(black_box(&torus)))
    });
    group.bench_function("classify_all_pairs torus-16x16 delta=8", |b| {
        b.iter(|| classify_all_pairs(black_box(&torus), 8))
    });

    // The pre-pairspace baseline, restricted to a 32-pair sample so one
    // iteration stays measurable; scale per-pair cost by 32640/32 ≈ 1020 for
    // the honest all-pairs comparison.
    let sample: Vec<(usize, usize)> = {
        let partition = OrbitPartition::compute(&torus);
        partition.symmetric_pairs().into_iter().take(32).collect()
    };
    group.bench_function("per-pair reference BFS torus-16x16 (32-pair sample)", |b| {
        b.iter(|| {
            sample
                .iter()
                .map(|&(u, v)| shrink_reference_bfs(black_box(&torus), u, v))
                .sum::<usize>()
        })
    });
    group.finish();
}

/// "Move through a pseudo-random port every round" — a cheap program whose
/// simulation cost is dominated by engine overhead, which is what this bench
/// isolates.
fn walker(nav: &mut dyn Navigator) -> Result<(), Stop> {
    let mut state = 0x9e3779b97f4a7c15u64;
    loop {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        nav.move_via((state >> 33) as usize % nav.degree())?;
    }
}

fn sweep(g: &anonrv_graph::PortGraph, config: impl Fn(Round) -> EngineConfig) -> usize {
    let n = g.num_nodes();
    let mut met = 0usize;
    for u in 0..8usize {
        for delta in 0..8u32 {
            let stic = Stic::new(u % n, (u * 5 + 3) % n, delta as Round);
            let outcome = simulate_with(g, &walker, &walker, &stic, config(200));
            met += usize::from(outcome.met());
        }
    }
    met
}

fn bench_lockstep_vs_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("short_horizon_sweep");
    group.sample_size(10);
    let ring = oriented_ring(32).unwrap();
    group.bench_function("lockstep engine, 64 STICs, horizon 200", |b| {
        b.iter(|| sweep(black_box(&ring), EngineConfig::lockstep))
    });
    group.bench_function("streaming engine, 64 STICs, horizon 200", |b| {
        b.iter(|| sweep(black_box(&ring), EngineConfig::streaming))
    });
    group.finish();
}

criterion_group!(benches, bench_all_pairs, bench_lockstep_vs_streaming);
criterion_main!(benches);
