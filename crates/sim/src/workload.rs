//! Deterministic workload programs shared by the benches, the CLI and the
//! persistent-store tests.
//!
//! Sweep-shaped measurements want an agent whose event mix resembles the
//! paper's procedures (pseudo-random moves interleaved with short waits)
//! without any per-algorithm setup cost, so that what gets timed is
//! engine/planner/store work.  Keeping the program *here* — next to the
//! engines — gives every consumer the same byte-for-byte behaviour and,
//! just as importantly for the persistent plan cache, the same canonical
//! [`SweepWalker::program_key`]: artifacts recorded by the benchmarks warm
//! the CLI's sweeps and vice versa.
//!
//! The walker is a [`FiniteStateProgram`]: its machine state is a 12-bit
//! full-period LCG, so its configuration sequence on any finite graph is
//! eventually periodic with a short period and the batch engine can detect
//! the cycle and serve astronomical horizons symbolically (see
//! [`crate::symbolic`]).  Crucially the state evolution is
//! observation-independent — `decide` never reads the degree or entry port
//! when advancing the state — so the walker spends a *constant* number of
//! rounds per full pass over its 4096 states, and per-node periods are
//! small multiples of that constant.

use crate::navigator::{
    drive_finite_state, AgentProgram, FiniteStateProgram, Navigator, StepAction, StepDecision, Stop,
};
use crate::stic::Round;

/// Number of bits of walker machine state: 4096 states, visited in a single
/// full-period orbit by the truncated LCG below.
const STATE_BITS: u32 = 12;
/// Mask selecting the machine state bits.
const STATE_MASK: u64 = (1 << STATE_BITS) - 1;

/// The deterministic sweep-workload agent: a seeded bounded-state LCG mixing
/// pseudo-random moves with short waits.  The seed is a constant of the
/// program (both agents share it), so differently seeded walkers are
/// different programs — [`SweepWalker::program_key`] embeds the seed for
/// exactly that reason.
pub struct SweepWalker {
    /// LCG seed (a constant of the program, shared by both agents).
    pub seed: u64,
}

/// Behaviour version of the walker, embedded in
/// [`SweepWalker::program_key`].  Persisted artifacts (timelines, outcome
/// tables) are keyed by the program; if the decision sequence ever changes
/// — state width, scrambling, the action mapping — under an unchanged key,
/// artifacts recorded by the *old* walker would be served as warm hits for
/// the new one, silently diverging from cold runs.  Bump this whenever the
/// walker's behaviour changes so stale artifacts become plain misses.
/// (v2: the 64-bit LCG walk became the 12-bit masked-state orbit with the
/// scrambled roll.)
const WALKER_BEHAVIOR_VERSION: u32 = 2;

impl SweepWalker {
    /// The canonical persistent-cache program key of this walker
    /// (`"sweep-walker-v2-<seed in hex>"`).  Every store-backed consumer
    /// must use this key so their artifacts warm each other.  The `v2`
    /// component is `WALKER_BEHAVIOR_VERSION`: it invalidates artifacts
    /// recorded by behaviourally different earlier walkers.
    pub fn program_key(&self) -> String {
        format!("sweep-walker-v{WALKER_BEHAVIOR_VERSION}-{:x}", self.seed)
    }

    /// Decorrelate the raw 12-bit LCG state into a roll with well-mixed low
    /// bits (the LCG's own low bits alternate with period 2).
    fn scramble(state: u64) -> u64 {
        state.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33
    }
}

impl FiniteStateProgram for SweepWalker {
    fn initial_state(&self) -> u64 {
        (self.seed | 1) & STATE_MASK
    }

    fn decide(&self, state: u64, degree: usize, _entry_port: Option<usize>) -> StepDecision {
        // Full period over 2^12 states: multiplier ≡ 1 (mod 4), odd increment.
        let next =
            state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) & STATE_MASK;
        let roll = Self::scramble(next);
        let action = if roll.is_multiple_of(4) {
            StepAction::Wait((roll % 7 + 1) as Round)
        } else {
            StepAction::Move(roll as usize % degree)
        };
        StepDecision { action, next }
    }
}

impl AgentProgram for SweepWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        drive_finite_state(self, nav)
    }

    fn name(&self) -> &str {
        "sweep-walker"
    }

    fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SweepEngine;
    use crate::engine::EngineConfig;
    use anonrv_graph::generators::oriented_ring;

    #[test]
    fn the_walker_is_deterministic_and_seed_sensitive() {
        let g = oriented_ring(8).unwrap();
        let stic = crate::stic::Stic::new(0, 3, 2);
        let a = SweepEngine::new(&g, &SweepWalker { seed: 0x5EED }, EngineConfig::batch(200));
        let b = SweepEngine::new(&g, &SweepWalker { seed: 0x5EED }, EngineConfig::batch(200));
        assert_eq!(a.simulate(&stic), b.simulate(&stic));
        assert_eq!(SweepWalker { seed: 0x5EED }.program_key(), "sweep-walker-v2-5eed");
        assert_eq!(SweepWalker { seed: 10 }.program_key(), "sweep-walker-v2-a");
    }

    #[test]
    fn run_matches_the_finite_state_view() {
        // The closure-style `run` must be the canonical finite-state driver:
        // replaying `decide` by hand yields the same recorded timeline.
        let g = oriented_ring(6).unwrap();
        let walker = SweepWalker { seed: 0x5EED };
        let driven = crate::batch::Timeline::record(&g, &walker, 2, 300);
        let replayed = crate::batch::Timeline::record(
            &g,
            &(|nav: &mut dyn Navigator| {
                let fs: &dyn FiniteStateProgram = &walker;
                let mut state = fs.initial_state();
                loop {
                    let d = fs.decide(state, nav.degree(), nav.entry_port());
                    match d.action {
                        StepAction::Wait(r) => nav.wait(r)?,
                        StepAction::Move(p) => {
                            nav.move_via(p)?;
                        }
                        StepAction::Halt => return Ok(()),
                    }
                    state = d.next;
                }
            }),
            2,
            300,
        );
        assert_eq!(driven, replayed);
    }
}
