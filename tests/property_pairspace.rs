//! Property tests pinning the flat product-space `ShrinkEngine` to its two
//! independent oracles on random graphs:
//!
//! * the pre-`pairspace` per-pair `HashMap` BFS
//!   ([`anonrv_graph::shrink::shrink_reference_bfs`]), and
//! * the exponential brute-force sequence enumeration
//!   ([`anonrv_graph::shrink::shrink_brute_force`]), wherever its bounded
//!   sequence length provably suffices (the engine's witness is no longer
//!   than the brute-force horizon).

use proptest::prelude::*;

use anonrv_graph::generators::random_connected;
use anonrv_graph::pairspace::ShrinkEngine;
use anonrv_graph::shrink::{shrink_brute_force, shrink_reference_bfs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_pairs_sweep_agrees_with_the_per_pair_reference_bfs(
        n in 2usize..12,
        extra in 0usize..8,
        seed in 0u64..400,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        let engine = ShrinkEngine::new(&g);
        let all = engine.all_pairs();
        for u in g.nodes() {
            for v in g.nodes() {
                let reference = shrink_reference_bfs(&g, u, v);
                prop_assert_eq!(
                    all.get(u, v), reference,
                    "all_pairs vs reference on pair ({}, {}) of n={} extra={} seed={}",
                    u, v, n, extra, seed
                );
                prop_assert_eq!(engine.shrink(u, v), reference);
            }
        }
    }

    #[test]
    fn engine_values_match_brute_force_where_its_horizon_suffices(
        n in 2usize..7,
        extra in 0usize..4,
        seed in 0u64..200,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        let engine = ShrinkEngine::new(&g);
        const MAX_LEN: usize = 6;
        for u in g.nodes() {
            for v in g.nodes() {
                let detailed = engine.shrink_detailed(u, v, usize::MAX).unwrap();
                let brute = shrink_brute_force(&g, u, v, MAX_LEN);
                // brute force over bounded sequences can only overestimate
                prop_assert!(detailed.shrink <= brute);
                if detailed.witness.len() <= MAX_LEN {
                    prop_assert_eq!(
                        detailed.shrink, brute,
                        "brute force (len {}) disagrees on ({}, {}) of n={} seed={}",
                        MAX_LEN, u, v, n, seed
                    );
                }
            }
        }
    }

    #[test]
    fn witnesses_are_applicable_and_realise_the_value(
        n in 2usize..10,
        extra in 0usize..6,
        seed in 0u64..200,
        a in 0usize..20,
        b in 0usize..20,
    ) {
        use anonrv_graph::distance::distance;
        use anonrv_graph::traversal::apply_ports_end;
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        let (u, v) = (a % n, b % n);
        let r = ShrinkEngine::new(&g).shrink_detailed(u, v, usize::MAX).unwrap();
        let end_u = apply_ports_end(&g, u, &r.witness);
        let end_v = apply_ports_end(&g, v, &r.witness);
        prop_assert!(end_u.is_some() && end_v.is_some(), "witness must be applicable at both");
        let (x, y) = (end_u.unwrap(), end_v.unwrap());
        prop_assert_eq!((x, y), r.closest_pair);
        prop_assert_eq!(distance(&g, x, y), r.shrink);
    }
}
