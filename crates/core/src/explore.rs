//! Procedure `Explore(u, d, δ)` (Algorithm 2 of the paper).
//!
//! The agent standing at node `u` enumerates, in lexicographic order of the
//! corresponding port sequences, every walk of length `d` starting at `u`;
//! for each it traverses the walk, traverses it back (through the observed
//! entry ports in reverse), and waits `δ − d` rounds at `u`.  Every iteration
//! therefore costs exactly `d + δ` rounds, which is the accounting the proof
//! of Lemma 3.2 relies on.
//!
//! The enumeration itself is performed with the information available to the
//! agent only: the degrees observed along the current walk determine which
//! port sequence comes next (an odometer increment whose digit ranges are the
//! observed degrees; resetting a suffix to all-zero ports is always valid
//! because port `0` exists at every node).
//!
//! With `pad_iterations = Some(c)` the call lasts exactly `c · (d + δ)`
//! rounds regardless of the graph: the enumeration is truncated after `c`
//! walks (only possible when the caller's size guess underestimates the
//! graph, in which case the call's correctness is not relied upon anyway) and
//! padded with waiting when it finishes early.  `UniversalRV` uses
//! `c = (n − 1)^d` (the paper's worst-case walk count) to keep the two
//! agents' phase boundaries perfectly aligned even when a phase
//! underestimates the size of the graph; `SymmRV` run standalone uses no
//! padding and matches the paper's procedure literally.

use anonrv_sim::{Navigator, Round, Stop};

/// Execute Procedure `Explore(u, d, δ)` from the agent's current node.
///
/// Requirements (checked by debug assertions, guaranteed by the callers):
/// `d ≥ 1` and `δ ≥ d`.
///
/// Returns the number of walks actually enumerated.
pub fn explore(
    nav: &mut dyn Navigator,
    d: usize,
    delta: Round,
    pad_iterations: Option<u128>,
) -> Result<u128, Stop> {
    debug_assert!(d >= 1, "Explore requires d >= 1");
    debug_assert!(delta >= d as Round, "Explore requires δ >= d");
    let iteration_rounds = d as Round + delta;

    // current port sequence; starts at the lexicographically smallest valid
    // sequence (all zeros — port 0 exists at every node of a connected graph)
    let mut seq = vec![0usize; d];
    let mut entry_ports = vec![0usize; d];
    let mut degrees = vec![0usize; d];
    let mut iterations: u128 = 0;

    loop {
        // out
        for i in 0..d {
            degrees[i] = nav.degree();
            debug_assert!(seq[i] < degrees[i], "odometer produced an invalid port");
            entry_ports[i] = nav.move_via(seq[i])?;
        }
        // back
        for i in (0..d).rev() {
            nav.move_via(entry_ports[i])?;
        }
        // wait
        nav.wait(delta - d as Round)?;
        iterations += 1;

        // with a pad target, stop once it is reached so the call's duration
        // never exceeds the caller's worst-case accounting
        if pad_iterations.is_some_and(|target| iterations >= target) {
            break;
        }

        // odometer increment using the degrees observed on this traversal
        let mut advanced = false;
        for i in (0..d).rev() {
            if seq[i] + 1 < degrees[i] {
                seq[i] += 1;
                for s in seq.iter_mut().skip(i + 1) {
                    *s = 0;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }

    if let Some(target) = pad_iterations {
        if target > iterations {
            let missing = target - iterations;
            nav.wait(missing.saturating_mul(iteration_rounds))?;
        }
    }
    Ok(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{oriented_ring, oriented_torus, path, star};
    use anonrv_graph::traversal::count_walks_of_length;
    use anonrv_graph::PortGraph;
    use anonrv_sim::{record_trace, AgentProgram, PositionTrace, TraceStats};

    fn run_explore(
        g: &PortGraph,
        start: usize,
        d: usize,
        delta: Round,
        pad: Option<u128>,
    ) -> (PositionTrace, TraceStats, u128) {
        let iterations = std::sync::Mutex::new(0u128);
        let program = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            let it = explore(nav, d, delta, pad)?;
            *iterations.lock().unwrap() = it;
            Ok(())
        };
        let (trace, stats) =
            record_trace(g, &program as &dyn AgentProgram, start, Round::MAX, 1 << 22);
        let it = *iterations.lock().unwrap();
        (trace, stats, it)
    }

    #[test]
    fn explore_enumerates_every_walk_exactly_once() {
        for (g, start) in [
            (oriented_ring(5).unwrap(), 0usize),
            (star(4).unwrap(), 0),
            (star(4).unwrap(), 1),
            (path(4).unwrap(), 1),
            (oriented_torus(3, 3).unwrap(), 4),
        ] {
            for d in 1..=3usize {
                let delta = (d + 2) as Round;
                let (_, _, iterations) = run_explore(&g, start, d, delta, None);
                assert_eq!(
                    iterations,
                    count_walks_of_length(&g, start, d),
                    "walk count mismatch (start {start}, d {d})"
                );
            }
        }
    }

    #[test]
    fn every_iteration_costs_d_plus_delta_rounds_and_ends_at_the_start() {
        let g = oriented_torus(3, 3).unwrap();
        let (d, delta) = (2usize, 5 as Round);
        let (trace, stats, iterations) = run_explore(&g, 0, d, delta, None);
        assert_eq!(stats.rounds, iterations * (d as Round + delta) + 1);
        assert_eq!(trace.final_position(), 0);
        // the agent only ever waits at the start node
        for seg in &trace.segments {
            if seg.len() > 1 {
                assert_eq!(seg.node, 0);
            }
        }
    }

    #[test]
    fn padding_fixes_the_total_duration() {
        let g = oriented_ring(6).unwrap(); // walks of length 2 from any node: 4
        let (d, delta) = (2usize, 3 as Round);
        let pad_to = 25u128; // the (n-1)^d bound for n = 6
        let (_, stats, iterations) = run_explore(&g, 2, d, delta, Some(pad_to));
        assert_eq!(iterations, 4);
        assert_eq!(stats.rounds, pad_to * (d as Round + delta) + 1);
    }

    #[test]
    fn padding_is_a_no_op_when_the_walk_count_reaches_the_target() {
        let g = star(3).unwrap();
        // from the center, walks of length 1: 3 == target
        let (_, stats, iterations) = run_explore(&g, 0, 1, 2, Some(3));
        assert_eq!(iterations, 3);
        assert_eq!(stats.rounds, 3 * 3 + 1);
    }

    #[test]
    fn lexicographic_order_is_respected() {
        // On the star's center with d = 1 the walks are port 0, 1, 2 in order;
        // verify through the positions visited at rounds 1, 4, 7 (each
        // iteration is d + δ = 3 rounds long).
        let g = star(3).unwrap();
        let (trace, _, _) = run_explore(&g, 0, 1, 2, None);
        assert_eq!(trace.position_at(1), Some(1));
        assert_eq!(trace.position_at(4), Some(2));
        assert_eq!(trace.position_at(7), Some(3));
    }
}
