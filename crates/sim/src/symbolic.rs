//! Symbolic (prefix + cycle) timelines: exact rendezvous at astronomical
//! horizons.
//!
//! A deterministic [`FiniteStateProgram`] on a finite port graph has a
//! finite configuration space — `(machine state, node, entry port)` at a
//! decision boundary (the wait counter of a mid-wait agent is implicitly
//! zero there, so it never enters the configuration) — and its
//! configuration sequence is therefore *eventually periodic*: after a
//! preperiod of μ decisions it repeats with some minimal period λ.  In
//! round space that makes the walker's position timeline `prefix · cycle^∞`,
//! which this module detects once per start node ([`detect_symbolic`],
//! Brent's algorithm on the configuration sequence) and stores as a
//! [`SymbolicTimeline`]: the explicit segments of the preperiod plus the
//! segments of one cycle, in the same flat [`TimelineParts`] arrays the
//! explicit engine serialises.
//!
//! ## Cycle cuts land on move boundaries
//!
//! Move counts in a [`Timeline`] are *positional* (every segment after the
//! first is opened by exactly one traversal), so unrolling cycle copies must
//! reproduce the explicit recording's segmentation exactly.  A cut in the
//! middle of a wait-coalesced segment would split it at every copy seam and
//! corrupt the counters, so detection normalises the cut forward to the
//! first configuration opened by a **move** decision: every seam between
//! copies is then a genuine traversal landing, and wait runs never span
//! copies.  A cycle containing no move at all degenerates to a *parked*
//! tail (the walker never moves again) and a program that halts degenerates
//! to a *terminated* tail — both carry period 0 and materialise to the
//! explicit representation's parked-forever conventions.
//!
//! ## Closed-form merge algebra
//!
//! [`merge_symbolic`] resolves a STIC at any horizon without unrolling.
//! Shift the later agent by δ; let `p` be the global round from which both
//! agents are inside their periodic tails (`P = max(p_a, p_b + δ)`) and
//! `L = lcm(T_a, T_b)` the alignment period of the two cycles (the CRT-style
//! alignment: the joint pair state at global rounds `t` and `t + L` is
//! identical for every `t ≥ P`).  Then the window `[0, P + L)` decides
//! everything:
//!
//! * a first intersection of the two occupancy sequences inside the window
//!   is the exact meeting at **every** horizon beyond it;
//! * no intersection inside the window proves there is none at any horizon
//!   (any meeting at `t ≥ P` maps to one at `P + (t − P) mod L < P + L` by
//!   periodicity);
//! * unmet move totals at a huge horizon `h` are closed-form: prefix moves
//!   plus `⌊(h − p)/T⌋` full cycles of moves plus the partial-cycle count
//!   ([`SymbolicTimeline::totals_up_to`]; the reported counters saturate at
//!   `u64::MAX` — see that method's docs).
//!
//! So a merge materialises at most `min(horizon, P + L)` rounds of explicit
//! timeline and hands them to the explicit [`merge_timelines`] kernel —
//! which is also what pins the symbolic path bit-identical to the explicit
//! engines on unrollable horizons (the differential property suite) and
//! makes it trivially identical on the window itself.
//!
//! ## Bounded materialisation: oversized windows decline, never unroll
//!
//! The alignment window is bounded by the *detected* structure, not by a
//! constant: two programs with long wait-based cycles can make
//! `L = lcm(T_a, T_b)` — or, via saturation, the whole window —
//! astronomically large, and "materialise the window" would then be exactly
//! the unbounded unroll this module exists to avoid.  Every materialisation
//! [`merge_symbolic`] performs is therefore gated by its **segment cost**
//! (closed-form, [`SymbolicTimeline`]'s cycle structure makes it O(1) to
//! predict): when either side would expand to more than [`MERGE_SEG_CAP`]
//! segments, the merge returns `None` and the caller falls back to the
//! explicit engines — bounded memory, never an OOM or a silent hang.  The
//! gate is on segments rather than rounds, so sparse timelines (huge waits,
//! few moves) still resolve symbolically at any horizon.
//!
//! ## Delay reduction: astronomical δ, not just astronomical horizons
//!
//! `P = max(p_a, p_b + δ)` grows with the delay, so a raw astronomical δ
//! would drag the window — and the materialisation — back up to `O(δ)`.
//! The earlier agent alone fills the gap `[0, δ)`, and past its own
//! preperiod it is periodic: shifting the whole merge **back by `k · T_a`
//! rounds** (any `k` with `δ − k·T_a ≥ p_a`) bijects the meetings.  The
//! merge therefore first reduces `δ` to `δ′ = p_a + ((δ − p_a) mod T_a)`
//! and solves at `(δ′, horizon − k·T_a)`; mapping back is closed-form —
//! the meeting's global round shifts forward by `k·T_a` (node and the later
//! agent's local round are untouched) and the earlier agent's move total
//! grows by exactly `k` cycles' worth of moves.  After reduction every
//! window quantity is bounded by the *detected* structure
//! (`p_a + T_a + p_b + lcm`), independent of both horizon and delay.

use anonrv_graph::{NodeId, Port, PortGraph};

use crate::batch::{merge_timelines, Timeline, TimelineParts, TimelineSeg};
use crate::engine::{Meeting, SimOutcome};
use crate::navigator::{drive_finite_state, FiniteStateProgram, Navigator, StepAction, Stop};
use crate::stic::{Round, Stic};

/// Budget (in decisions) for the cycle search; detection that does not
/// converge within it returns `None` and the caller falls back to explicit
/// simulation.  Bounds both time and the replay's segment memory.
const DETECT_BUDGET: u64 = 1 << 21;

/// Local horizon used to record the explicit run of a program that halts
/// during detection (large enough for any terminating run the budget
/// admits; a run that is horizon-cut even here fails detection instead).
const DETECT_HORIZON: Round = 1 << 60;

/// How a [`SymbolicTimeline`]'s infinite tail behaves after its preperiod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolicTail {
    /// The walker repeats a cycle of segments (period > 0) forever.
    Cycle,
    /// The walker never moves again: it waits at one node forever (period
    /// 0, but the program keeps running).
    Parked,
    /// The program halted; the agent stays parked at its final node forever
    /// (period 0, explicit `INFINITY` tail conventions apply).
    Terminated,
}

impl SymbolicTail {
    /// Stable on-disk code of the tail kind.
    pub fn code(self) -> u8 {
        match self {
            SymbolicTail::Cycle => 0,
            SymbolicTail::Parked => 1,
            SymbolicTail::Terminated => 2,
        }
    }

    /// Inverse of [`SymbolicTail::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(SymbolicTail::Cycle),
            1 => Some(SymbolicTail::Parked),
            2 => Some(SymbolicTail::Terminated),
            _ => None,
        }
    }
}

/// One start node's timeline in `prefix · cycle^∞` form: the explicit
/// segments of the preperiod plus the segments of one cycle (rebased to
/// local round 0), both in the canonical flat [`TimelineParts`] arrays.
/// Detected once per start by [`detect_symbolic`]; exact at **every**
/// horizon ([`SymbolicTimeline::materialize`] reproduces the explicit
/// recording bit-identically, [`merge_symbolic`] resolves STICs without
/// unrolling).
///
/// Representation per tail kind (see [`SymbolicTail`]):
///
/// * `Cycle` — `prefix` covers local rounds `[0, preperiod)`, `cycle`
///   covers `[0, period)` with its first segment opened by a move (the
///   move-boundary cut normalisation);
/// * `Parked` — `prefix` covers `[0, preperiod)`, `cycle` is a single
///   `[0, 1)` marker segment carrying the parked node, `period == 0`;
/// * `Terminated` — `prefix` is the *full* explicit run including its
///   `INFINITY` tail, `preperiod` is its finite end, `cycle` is empty,
///   `period == 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicTimeline {
    n: usize,
    preperiod: Round,
    period: Round,
    tail: SymbolicTail,
    prefix: TimelineParts,
    cycle: TimelineParts,
}

impl SymbolicTimeline {
    /// Rebuild a symbolic timeline from its serialised form, validating
    /// every structural invariant [`detect_symbolic`] guarantees (shape,
    /// contiguity, canonical occupancy index, tail conventions).  Errors
    /// describe the first violated invariant; a persistent cache treats any
    /// error as a miss and falls back to re-detection.
    pub fn from_raw(
        n: usize,
        preperiod: Round,
        period: Round,
        tail: SymbolicTail,
        prefix: TimelineParts,
        cycle: TimelineParts,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err("a symbolic timeline needs a non-empty graph".into());
        }
        match tail {
            SymbolicTail::Cycle => {
                if period == 0 {
                    return Err("a cyclic tail has a positive period".into());
                }
                if period == INFINITY {
                    return Err("a cyclic tail has a finite period".into());
                }
                validate_parts(n, &prefix, preperiod)?;
                validate_parts(n, &cycle, period)?;
                if cycle.nodes.is_empty() {
                    return Err("a cyclic tail carries at least one segment".into());
                }
            }
            SymbolicTail::Parked => {
                if period != 0 {
                    return Err("a parked tail has period 0".into());
                }
                validate_parts(n, &prefix, preperiod)?;
                if cycle.nodes.len() != 1 || cycle.starts != [0, 1] {
                    return Err("a parked tail carries exactly its [0, 1) marker segment".into());
                }
                validate_parts(n, &cycle, 1)?;
            }
            SymbolicTail::Terminated => {
                if period != 0 {
                    return Err("a terminated tail has period 0".into());
                }
                if !cycle.nodes.is_empty() || cycle.starts != [0] {
                    return Err("a terminated tail carries no cycle segments".into());
                }
                let nsegs = prefix.nodes.len();
                if nsegs < 2 || prefix.starts.get(nsegs - 1) != Some(&preperiod) {
                    return Err(
                        "a terminated prefix ends its finite run exactly at the preperiod".into()
                    );
                }
                let t = Timeline::from_parts(n, preperiod, prefix.clone())?;
                if !t.terminated() {
                    return Err("a terminated prefix carries the INFINITY tail".into());
                }
            }
        }
        Ok(SymbolicTimeline { n, preperiod, period, tail, prefix, cycle })
    }

    /// Node count of the graph the timeline was detected on.
    pub fn num_graph_nodes(&self) -> usize {
        self.n
    }

    /// First local round of the periodic (or parked/terminated) tail; for a
    /// terminated run, the finite end of the explicit recording.
    pub fn preperiod(&self) -> Round {
        self.preperiod
    }

    /// Rounds per cycle (0 for parked/terminated tails).
    pub fn period(&self) -> Round {
        self.period
    }

    /// The tail kind.
    pub fn tail(&self) -> SymbolicTail {
        self.tail
    }

    /// The prefix arrays (serialisation surface).
    pub fn prefix(&self) -> &TimelineParts {
        &self.prefix
    }

    /// The cycle arrays (serialisation surface).
    pub fn cycle(&self) -> &TimelineParts {
        &self.cycle
    }

    /// The global round from which the walker is inside its periodic tail
    /// (every position at `t >= aligned_from()` repeats with
    /// [`Self::alignment_period`]).
    fn aligned_from(&self) -> Round {
        self.preperiod
    }

    /// The period the tail repeats with in round space: the cycle length,
    /// or 1 for parked/terminated tails (a constant sequence has period 1).
    fn alignment_period(&self) -> Round {
        match self.tail {
            SymbolicTail::Cycle => self.period,
            SymbolicTail::Parked | SymbolicTail::Terminated => 1,
        }
    }

    /// The explicit [`Timeline`] of this run at local `horizon` —
    /// **bit-identical**, segments included, to recording the program fresh
    /// at that horizon (pinned by the unit and property suites).  Cost is
    /// `O(prefix + unrolled cycle segments)`, so callers cap the horizon
    /// (merges use the alignment window); an astronomical horizon is never
    /// materialised, only resolved by [`merge_symbolic`].
    pub fn materialize(&self, horizon: Round) -> Timeline {
        if self.tail == SymbolicTail::Terminated {
            let finite_end = self.preperiod;
            return if horizon.saturating_add(1) >= finite_end {
                // the run completes within the horizon: the recording is
                // horizon-independent beyond its finite end
                Timeline::from_parts(self.n, horizon, self.prefix.clone())
                    .expect("validated terminated prefix rebuilds")
            } else {
                Timeline::from_parts(self.n, finite_end, self.prefix.clone())
                    .expect("validated terminated prefix rebuilds")
                    .truncate(horizon)
            };
        }
        let mut segs: Vec<TimelineSeg> = Vec::new();
        for i in 0..self.prefix.nodes.len() {
            let start = self.prefix.starts[i];
            if start > horizon {
                break;
            }
            segs.push(TimelineSeg {
                node: self.prefix.nodes[i] as usize,
                start,
                end: self.prefix.starts[i + 1].min(horizon + 1),
            });
        }
        match self.tail {
            SymbolicTail::Parked => {
                if self.preperiod <= horizon {
                    segs.push(TimelineSeg {
                        node: self.cycle.nodes[0] as usize,
                        start: self.preperiod,
                        end: horizon + 1,
                    });
                }
            }
            SymbolicTail::Cycle => {
                let mut base = self.preperiod;
                'copies: while base <= horizon {
                    for i in 0..self.cycle.nodes.len() {
                        let start = base + self.cycle.starts[i];
                        if start > horizon {
                            break 'copies;
                        }
                        segs.push(TimelineSeg {
                            node: self.cycle.nodes[i] as usize,
                            start,
                            end: (base + self.cycle.starts[i + 1]).min(horizon + 1),
                        });
                    }
                    base += self.period;
                }
            }
            SymbolicTail::Terminated => unreachable!("handled above"),
        }
        Timeline::from_segments(self.n, horizon, segs)
            .expect("symbolic materialisation preserves timeline invariants")
    }

    /// `(moves, terminated)` of the explicit run truncated at local horizon
    /// `cap` — the closed-form counterpart of `Timeline::totals_up_to`,
    /// exact at any `cap` (full cycles contribute `⌊(cap − p)/T⌋ · λ` moves
    /// without unrolling) **up to the width of the counter**: move totals
    /// are reported as `u64` across every engine and outcome table, so a
    /// run that accumulates more than `2^64 − 1` moves (a cycling walker
    /// needs a horizon beyond ~`2^64` rounds for that) reports exactly
    /// `u64::MAX`, the documented saturation sentinel.  Meeting rounds and
    /// horizons are unaffected — they are [`Round`]-wide and stay exact.
    pub fn totals_up_to(&self, cap: Round) -> (u64, bool) {
        match self.tail {
            SymbolicTail::Terminated => {
                if cap >= self.preperiod - 1 {
                    ((self.prefix.nodes.len() - 2) as u64, true)
                } else {
                    (seg_index_at(&self.prefix, cap) as u64, false)
                }
            }
            SymbolicTail::Parked => {
                if cap >= self.preperiod {
                    (self.prefix.nodes.len() as u64, false)
                } else {
                    (seg_index_at(&self.prefix, cap) as u64, false)
                }
            }
            SymbolicTail::Cycle => {
                if cap < self.preperiod {
                    (seg_index_at(&self.prefix, cap) as u64, false)
                } else {
                    let full = (cap - self.preperiod) / self.period;
                    let rem = (cap - self.preperiod) % self.period;
                    let idx = self.prefix.nodes.len() as u128
                        + full * self.cycle.nodes.len() as u128
                        + seg_index_at(&self.cycle, rem) as u128;
                    (u64::try_from(idx).unwrap_or(u64::MAX), false)
                }
            }
        }
    }

    /// Upper bound on the explicit segments [`Self::materialize`] would
    /// produce at local `horizon` — closed-form (no unrolling) and
    /// saturating.  This is the cost gate [`merge_symbolic`] applies before
    /// materialising an alignment window: prediction must stay O(1) even
    /// when the answer is astronomical.
    fn materialized_segments(&self, horizon: Round) -> u128 {
        let prefix = self.prefix.nodes.len() as u128;
        match self.tail {
            SymbolicTail::Terminated => prefix,
            SymbolicTail::Parked => prefix + 1,
            SymbolicTail::Cycle => {
                if horizon < self.preperiod {
                    prefix
                } else {
                    let copies = (horizon - self.preperiod) / self.period + 1;
                    prefix.saturating_add(copies.saturating_mul(self.cycle.nodes.len() as u128))
                }
            }
        }
    }
}

const INFINITY: Round = Round::MAX;

/// Index of the segment of `parts` occupying local round `local` (which
/// must be covered by the segments).
fn seg_index_at(parts: &TimelineParts, local: Round) -> usize {
    let nsegs = parts.nodes.len();
    parts.starts[1..=nsegs].partition_point(|&end| end <= local)
}

/// Validate one prefix/cycle array block: shape, contiguity (strictly
/// increasing starts), node range, the expected sentinel, and the canonical
/// counting-sort occupancy index.  An empty block is the canonical empty
/// form (`starts == [0]`).
fn validate_parts(n: usize, parts: &TimelineParts, sentinel: Round) -> Result<(), String> {
    let nsegs = parts.nodes.len();
    if parts.starts.len() != nsegs + 1 {
        return Err("the start array carries one sentinel past the segments".into());
    }
    if parts.starts[0] != 0 {
        return Err("the first segment must start at local round 0".into());
    }
    if nsegs == 0 && sentinel != 0 {
        return Err("an empty block covers no rounds".into());
    }
    if parts.starts[nsegs] != sentinel {
        return Err(format!(
            "block sentinel {} does not cover the declared {sentinel} rounds",
            parts.starts[nsegs]
        ));
    }
    for i in 0..nsegs {
        if parts.starts[i] >= parts.starts[i + 1] {
            return Err(format!("segment {i}: empty or inverted interval"));
        }
        if (parts.nodes[i] as usize) >= n {
            return Err(format!("segment {i}: node {} out of range (n = {n})", parts.nodes[i]));
        }
    }
    let canonical = canonical_parts(n, parts.starts.clone(), parts.nodes.clone());
    if canonical != *parts {
        return Err("occupancy index is not in canonical counting-sort form".into());
    }
    Ok(())
}

/// Build canonical [`TimelineParts`] from `starts`/`nodes` by the same
/// counting sort the explicit `Timeline::assemble` runs.
fn canonical_parts(n: usize, starts: Vec<Round>, nodes: Vec<u32>) -> TimelineParts {
    let nsegs = nodes.len();
    let mut occ_starts = vec![0u32; n + 1];
    for &u in &nodes {
        occ_starts[u as usize + 1] += 1;
    }
    for i in 0..n {
        occ_starts[i + 1] += occ_starts[i];
    }
    let mut cursor = occ_starts.clone();
    let mut occ_start = vec![0 as Round; nsegs];
    let mut occ_end = vec![0 as Round; nsegs];
    let mut occ_seg = vec![0u32; nsegs];
    for (i, &u) in nodes.iter().enumerate() {
        let c = cursor[u as usize] as usize;
        occ_start[c] = starts[i];
        occ_end[c] = starts[i + 1];
        occ_seg[c] = i as u32;
        cursor[u as usize] += 1;
    }
    TimelineParts { starts, nodes, occ_starts, occ_start, occ_end, occ_seg }
}

/// One decision-boundary configuration of a finite-state walker: everything
/// the next decision can depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Config {
    state: u64,
    node: NodeId,
    entry: Option<Port>,
}

/// Outcome of advancing a configuration by one decision.
enum Advance {
    /// The decision consumed `rounds` rounds and yielded the successor
    /// configuration; `moved` is true for a traversal decision.
    Go { next: Config, rounds: Round, moved: bool },
    /// The program halted.
    Halt,
}

/// Detect the `prefix · cycle^∞` structure of `program` started at `start`:
/// Brent's cycle search on the configuration sequence, the move-boundary
/// cut normalisation, and one replay to harvest the segment arrays (see the
/// module docs).  Returns `None` when the budgeted search does not converge
/// (the caller falls back to explicit simulation); programs that halt
/// within the budget come back as terminated symbolic timelines.
pub fn detect_symbolic(
    g: &PortGraph,
    program: &dyn FiniteStateProgram,
    start: NodeId,
) -> Option<SymbolicTimeline> {
    let n = g.num_nodes();
    assert!(start < n, "start node out of range");
    let advance = |cfg: Config| -> Advance {
        let decision = program.decide(cfg.state, g.degree(cfg.node), cfg.entry);
        match decision.action {
            StepAction::Wait(rounds) => {
                Advance::Go { next: Config { state: decision.next, ..cfg }, rounds, moved: false }
            }
            StepAction::Move(port) => {
                let (to, entry) = g.succ(cfg.node, port);
                Advance::Go {
                    next: Config { state: decision.next, node: to, entry: Some(entry) },
                    rounds: 1,
                    moved: true,
                }
            }
            StepAction::Halt => Advance::Halt,
        }
    };
    let step = |cfg: Config| -> Option<Config> {
        match advance(cfg) {
            Advance::Go { next, .. } => Some(next),
            Advance::Halt => None,
        }
    };
    let terminated_fallback = || -> Option<SymbolicTimeline> {
        // the program halts: record the explicit run once (through the
        // canonical finite-state driver, so it is bit-identical to the
        // program's own `run`) and keep it whole as the prefix
        let runner =
            |nav: &mut dyn Navigator| -> Result<(), Stop> { drive_finite_state(program, nav) };
        let t = Timeline::record(g, &runner, start, DETECT_HORIZON);
        if !t.terminated() {
            return None;
        }
        let nsegs = t.num_segments();
        let finite_end = t.starts()[nsegs - 1];
        let prefix = TimelineParts {
            starts: t.starts().to_vec(),
            nodes: t.seg_nodes().to_vec(),
            occ_starts: t.occ_starts().to_vec(),
            occ_start: t.occ_interval_starts().to_vec(),
            occ_end: t.occ_interval_ends().to_vec(),
            occ_seg: t.occ_segs().to_vec(),
        };
        Some(SymbolicTimeline {
            n,
            preperiod: finite_end,
            period: 0,
            tail: SymbolicTail::Terminated,
            prefix,
            cycle: TimelineParts {
                starts: vec![0],
                nodes: vec![],
                occ_starts: vec![0; n + 1],
                occ_start: vec![],
                occ_end: vec![],
                occ_seg: vec![],
            },
        })
    };

    let cfg0 = Config { state: program.initial_state(), node: start, entry: None };

    // Brent: minimal period λ of the configuration sequence
    let mut budget = DETECT_BUDGET;
    let mut power: u64 = 1;
    let mut lam: u64 = 1;
    let mut tortoise = cfg0;
    let mut hare = match step(cfg0) {
        Some(c) => c,
        None => return terminated_fallback(),
    };
    while tortoise != hare {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        if power == lam {
            tortoise = hare;
            power = power.checked_mul(2)?;
            lam = 0;
        }
        hare = match step(hare) {
            Some(c) => c,
            None => return terminated_fallback(),
        };
        lam += 1;
    }

    // minimal preperiod μ: advance one pointer λ steps, then walk both
    // (the sequence is infinite from here on: a halt would have surfaced
    // before any configuration could repeat)
    let mut mu: u64 = 0;
    tortoise = cfg0;
    hare = cfg0;
    for _ in 0..lam {
        hare = step(hare)?;
    }
    while tortoise != hare {
        tortoise = step(tortoise)?;
        hare = step(hare)?;
        mu += 1;
    }

    // Move-boundary cut normalisation.  A cut at decision index m is valid
    // when *every* copy seam round(m + k·λ), k ≥ 0, is opened by a move —
    // i.e. decision m − 1 is a move (prefix boundary; vacuous at m = 0) and
    // decision m + λ − 1 is a move (the periodic seam: decisions at indices
    // ≥ μ repeat with period λ, so one check covers all k ≥ 1).  Scan one
    // period for the decision kinds; absent any move the tail is parked.
    let mut cfg = cfg0;
    let mut last_prefix_move = false; // was decision μ − 1 a move?
    for _ in 0..mu {
        match advance(cfg) {
            Advance::Go { next, moved, .. } => {
                cfg = next;
                last_prefix_move = moved;
            }
            Advance::Halt => unreachable!("halting runs never reach the cycle phase"),
        }
    }
    let mut first_cycle_move: Option<u64> = None; // smallest j ∈ [μ, μ+λ) with a move
    let mut last_cycle_move = false; // is decision μ + λ − 1 a move?
    let mut probe = cfg;
    for j in 0..lam {
        match advance(probe) {
            Advance::Go { next, moved, .. } => {
                if moved && first_cycle_move.is_none() {
                    first_cycle_move = Some(mu + j);
                }
                last_cycle_move = moved;
                probe = next;
            }
            Advance::Halt => unreachable!("halting runs never reach the cycle phase"),
        }
    }

    // one replay of decisions [0, cut + λ), building segments exactly like
    // the recording sink does (waits coalesce, moves open segments),
    // tracking the round reached at the cut index
    let replay = |decisions: u64, mark: u64| -> (Vec<TimelineSeg>, Round) {
        let mut cfg = cfg0;
        let mut time: Round = 0;
        let mut mark_time: Round = 0;
        let mut segs: Vec<TimelineSeg> = vec![TimelineSeg { node: start, start: 0, end: 1 }];
        for idx in 0..decisions {
            if idx == mark {
                mark_time = time;
            }
            match advance(cfg) {
                Advance::Go { next, rounds, moved } => {
                    if moved {
                        time += 1;
                        segs.push(TimelineSeg { node: next.node, start: time, end: time + 1 });
                    } else {
                        time += rounds;
                        segs.last_mut().expect("non-empty").end = time + 1;
                    }
                    cfg = next;
                }
                Advance::Halt => unreachable!("halting runs never reach the cycle phase"),
            }
        }
        if decisions == mark {
            mark_time = time;
        }
        (segs, mark_time)
    };

    match first_cycle_move {
        None => {
            // no move inside the cycle: the walker parks forever at its
            // current node after its last move (decisions ≥ μ never move)
            let (segs, _) = replay(mu, mu);
            let parked = *segs.last().expect("non-empty");
            let prefix_segs = &segs[..segs.len() - 1];
            let preperiod = parked.start;
            let (starts, nodes) = split_arrays(prefix_segs, 0, preperiod);
            let prefix = canonical_parts(n, starts, nodes);
            let cycle = canonical_parts(n, vec![0, 1], vec![parked.node as u32]);
            Some(SymbolicTimeline {
                n,
                preperiod,
                period: 0,
                tail: SymbolicTail::Parked,
                prefix,
                cycle,
            })
        }
        Some(j) => {
            // earliest valid cut: m = μ when both seam decisions are moves,
            // else right after the first in-cycle move (decision j is
            // periodic, so every later seam repeats it)
            let mu_cut_valid = last_cycle_move && (mu == 0 || last_prefix_move);
            let m = if mu_cut_valid { mu } else { j + 1 };
            let (mut segs, cut_time) = replay(m + lam, m);
            // the final replayed decision (a move, by cut validity) opened
            // the first segment of the *next* copy; drop it — its start is
            // the end of the cycle's last segment
            let overshoot = segs.pop().expect("replay ends on a move landing");
            let period = overshoot.start - cut_time;
            if period == 0 {
                // a cycle of zero-duration waits makes no progress in round
                // space; explicit simulation would diverge too — give up
                return None;
            }
            let cut_seg = segs.partition_point(|s| s.start < cut_time);
            debug_assert!(
                segs.get(cut_seg).is_some_and(|s| s.start == cut_time),
                "the cut lands on a move-opened segment boundary"
            );
            debug_assert_eq!(
                overshoot.node, segs[cut_seg].node,
                "one period later the walker re-enters the cycle's first node"
            );
            let (pre_starts, pre_nodes) = split_arrays(&segs[..cut_seg], 0, cut_time);
            let (cyc_starts, cyc_nodes) = split_arrays(&segs[cut_seg..], cut_time, period);
            Some(SymbolicTimeline {
                n,
                preperiod: cut_time,
                period,
                tail: SymbolicTail::Cycle,
                prefix: canonical_parts(n, pre_starts, pre_nodes),
                cycle: canonical_parts(n, cyc_starts, cyc_nodes),
            })
        }
    }
}

/// Rebase a slice of contiguous segments by `-offset` into flat
/// `starts`/`nodes` arrays with the given sentinel (total covered rounds).
fn split_arrays(segs: &[TimelineSeg], offset: Round, sentinel: Round) -> (Vec<Round>, Vec<u32>) {
    let mut starts: Vec<Round> = Vec::with_capacity(segs.len() + 1);
    let mut nodes: Vec<u32> = Vec::with_capacity(segs.len());
    for s in segs {
        starts.push(s.start - offset);
        nodes.push(s.node as u32);
    }
    starts.push(sentinel);
    (starts, nodes)
}

/// Greatest common divisor (Euclid).
fn gcd(a: Round, b: Round) -> Round {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple, saturating (a saturated alignment window simply
/// falls back to explicit materialisation at the requested horizon).
fn lcm(a: Round, b: Round) -> Round {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// Largest number of explicit segments [`merge_symbolic`] will materialise
/// per side before declining (see the module docs): the same order of work
/// the explicit engines accept at the unroll cap, so a declined merge hands
/// the caller a problem no harder than the one it already handles.
pub const MERGE_SEG_CAP: u128 = 1 << 22;

/// Resolve one STIC from two symbolic timelines at **any** horizon —
/// bit-identical to the explicit `merge_timelines` over fresh recordings at
/// the same horizon, with cost independent of the horizon (see the module
/// docs for the alignment-window algebra).
///
/// Returns `None` — never a wrong or truncated outcome — when resolving
/// exactly would require materialising more than [`MERGE_SEG_CAP`] segments
/// on either side (an alignment window blown up by long or saturated cycle
/// `lcm`s); the caller falls back to the explicit path.  Move counters in
/// the returned outcome saturate at `u64::MAX`
/// ([`SymbolicTimeline::totals_up_to`]); everything else is exact.
pub fn merge_symbolic(
    earlier: &SymbolicTimeline,
    later: &SymbolicTimeline,
    stic: &Stic,
    horizon: Round,
) -> Option<SimOutcome> {
    debug_assert_eq!(earlier.n, later.n, "timelines of one graph");
    if stic.delay > horizon {
        return Some(SimOutcome::no_show(horizon));
    }
    // Delay reduction (see the module docs): once the earlier agent is past
    // its own preperiod, shifting the merge back by whole earlier-cycles
    // bijects the meetings, so an astronomical δ reduces to
    // `δ′ ∈ [p_a, p_a + T_a)` before any window is sized.  Without this the
    // alignment window — and the materialisation — would grow with δ.
    let mu_a = earlier.aligned_from();
    let lam_a = earlier.alignment_period();
    let shift = match stic.delay.checked_sub(mu_a) {
        Some(excess) if lam_a > 0 => (excess / lam_a).saturating_mul(lam_a),
        _ => 0,
    };
    if shift > 0 {
        let reduced = Stic { delay: stic.delay - shift, ..*stic };
        let probe = merge_aligned(earlier, later, &reduced, horizon - shift)?;
        // Map back: the meeting (if any) moves forward by `shift` global
        // rounds on the same node at the same later-agent local round, and
        // the earlier agent walks `shift / T_a` extra cycles — each worth
        // one move per cycle segment (the move-boundary cut guarantees it).
        // Everything the later agent sees is untouched.
        let cycle_moves = match earlier.tail {
            SymbolicTail::Cycle => earlier.cycle.nodes.len() as u128,
            SymbolicTail::Parked | SymbolicTail::Terminated => 0,
        };
        let extra = (shift / lam_a) * cycle_moves;
        let earlier_moves = u64::try_from(u128::from(probe.earlier_moves).saturating_add(extra))
            .unwrap_or(u64::MAX);
        return Some(SimOutcome {
            meeting: probe.meeting.map(|m| Meeting { global_round: m.global_round + shift, ..m }),
            earlier_moves,
            horizon,
            ..probe
        });
    }
    merge_aligned(earlier, later, stic, horizon)
}

/// [`merge_symbolic`] after delay reduction: `δ < p_a + T_a` (or the earlier
/// timeline is degenerate), so the alignment window below is bounded by the
/// detected cycle structure alone — which can still be astronomically large
/// (long or saturated cycle `lcm`s), hence the [`MERGE_SEG_CAP`] gate on
/// every materialisation: `None` means "too expensive to resolve exactly",
/// never a truncated answer.
fn merge_aligned(
    earlier: &SymbolicTimeline,
    later: &SymbolicTimeline,
    stic: &Stic,
    horizon: Round,
) -> Option<SimOutcome> {
    let aligned = earlier.aligned_from().max(later.aligned_from().saturating_add(stic.delay));
    let align_period = lcm(earlier.alignment_period(), later.alignment_period());
    let window = aligned.saturating_add(align_period);
    // everything below materialises both sides at `min(horizon, window)`
    let probe_horizon = horizon.min(window);
    if earlier.materialized_segments(probe_horizon) > MERGE_SEG_CAP
        || later.materialized_segments(probe_horizon) > MERGE_SEG_CAP
    {
        return None;
    }
    if horizon <= window {
        // small enough to decide exactly on materialised prefixes
        let me = earlier.materialize(horizon);
        let ml = later.materialize(horizon);
        return Some(merge_timelines(&me, &ml, stic, horizon));
    }
    if anonrv_obs::enabled() {
        anonrv_obs::counter_add("symbolic.merges", 1);
    }
    let me = earlier.materialize(window);
    let ml = later.materialize(window);
    let probe = merge_timelines(&me, &ml, stic, window);
    if probe.meeting.is_some() {
        // a meeting inside the window is the first meeting at every larger
        // horizon; only the reporting horizon changes
        return Some(SimOutcome { horizon, ..probe });
    }
    // the joint pair state is periodic with period `align_period` from
    // `aligned`, and [aligned, window) covers one full period with no
    // intersection: there is no meeting at any horizon.  Report the exact
    // (saturating, see `totals_up_to`) closed-form move totals.
    let (earlier_moves, earlier_terminated) = earlier.totals_up_to(horizon);
    let (later_moves, later_terminated) = later.totals_up_to(horizon - stic.delay);
    Some(SimOutcome {
        meeting: None,
        earlier_moves,
        later_moves,
        earlier_terminated,
        later_terminated,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{TrajectoryCache, UNROLL_CAP};
    use crate::navigator::{drive_finite_state, AgentProgram, StepDecision};
    use crate::workload::SweepWalker;
    use anonrv_graph::generators::{circulant, oriented_ring};

    /// Always traverse port 0; machine state is constant.
    struct Rotor;

    impl FiniteStateProgram for Rotor {
        fn initial_state(&self) -> u64 {
            0
        }
        fn decide(&self, _state: u64, _degree: usize, _entry: Option<Port>) -> StepDecision {
            StepDecision { action: StepAction::Move(0), next: 0 }
        }
    }

    impl AgentProgram for Rotor {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            drive_finite_state(self, nav)
        }
        fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
            Some(self)
        }
    }

    /// Alternate `Wait(2)` and `Move(0)` (two machine states).
    struct WaitMover;

    impl FiniteStateProgram for WaitMover {
        fn initial_state(&self) -> u64 {
            0
        }
        fn decide(&self, state: u64, _degree: usize, _entry: Option<Port>) -> StepDecision {
            if state == 0 {
                StepDecision { action: StepAction::Wait(2), next: 1 }
            } else {
                StepDecision { action: StepAction::Move(0), next: 0 }
            }
        }
    }

    impl AgentProgram for WaitMover {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            drive_finite_state(self, nav)
        }
        fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
            Some(self)
        }
    }

    /// Traverse port 0 `k` times, then wait forever (parked tail).
    struct KThenPark(u64);

    impl FiniteStateProgram for KThenPark {
        fn initial_state(&self) -> u64 {
            0
        }
        fn decide(&self, state: u64, _degree: usize, _entry: Option<Port>) -> StepDecision {
            if state < self.0 {
                StepDecision { action: StepAction::Move(0), next: state + 1 }
            } else {
                StepDecision { action: StepAction::Wait(5), next: self.0 }
            }
        }
    }

    impl AgentProgram for KThenPark {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            drive_finite_state(self, nav)
        }
        fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
            Some(self)
        }
    }

    /// Cycle through `k` machine states, moving on port 0 every decision:
    /// the configuration period on an n-ring is `lcm(k, n)` rounds at one
    /// segment per round — the densest possible cycle, used to blow the
    /// alignment window's segment cost past [`MERGE_SEG_CAP`].
    struct ModRotor(u64);

    impl FiniteStateProgram for ModRotor {
        fn initial_state(&self) -> u64 {
            0
        }
        fn decide(&self, state: u64, _degree: usize, _entry: Option<Port>) -> StepDecision {
            StepDecision { action: StepAction::Move(0), next: (state + 1) % self.0 }
        }
    }

    impl AgentProgram for ModRotor {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            drive_finite_state(self, nav)
        }
        fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
            Some(self)
        }
    }

    /// Alternate `Wait(w)` and `Move(0)` for an astronomical `w`: the
    /// period on an n-ring is `n·(w + 1)` rounds in only `2n` segments —
    /// maximally sparse cycles whose pairwise `lcm` saturates [`Round`].
    struct SlowRotor(Round);

    impl FiniteStateProgram for SlowRotor {
        fn initial_state(&self) -> u64 {
            0
        }
        fn decide(&self, state: u64, _degree: usize, _entry: Option<Port>) -> StepDecision {
            if state == 0 {
                StepDecision { action: StepAction::Wait(self.0), next: 1 }
            } else {
                StepDecision { action: StepAction::Move(0), next: 0 }
            }
        }
    }

    impl AgentProgram for SlowRotor {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            drive_finite_state(self, nav)
        }
        fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
            Some(self)
        }
    }

    /// Traverse port 0 `k` times, then halt (terminated tail).
    struct KThenHalt(u64);

    impl FiniteStateProgram for KThenHalt {
        fn initial_state(&self) -> u64 {
            0
        }
        fn decide(&self, state: u64, _degree: usize, _entry: Option<Port>) -> StepDecision {
            if state < self.0 {
                StepDecision { action: StepAction::Move(0), next: state + 1 }
            } else {
                StepDecision { action: StepAction::Halt, next: state }
            }
        }
    }

    impl AgentProgram for KThenHalt {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            drive_finite_state(self, nav)
        }
        fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
            Some(self)
        }
    }

    #[test]
    fn rotor_cycle_on_rings_is_exactly_minimal() {
        // A constant-state port-0 walker on an oriented ring of n nodes has
        // full-state period exactly n rounds.  The only pre-periodic
        // configuration is the start (its entry port is `None`, every later
        // configuration carries `Some(port)`), and the cut lands on the move
        // boundary right after it: preperiod exactly 1.
        for n in [3usize, 5, 8, 12] {
            let g = oriented_ring(n).unwrap();
            let s = detect_symbolic(&g, &Rotor, 0).expect("rotor cycles");
            assert_eq!(s.tail(), SymbolicTail::Cycle);
            assert_eq!(s.preperiod(), 1, "ring {n}");
            assert_eq!(s.period(), n as Round, "ring {n}");
            assert_eq!(s.cycle().nodes.len(), n, "one segment per ring node");
        }
    }

    #[test]
    fn wait_mover_cycle_on_circulants_is_exactly_minimal() {
        // Wait(2)+Move(0) spends exactly 3 rounds per node, so the
        // closed-form full-state period on an n-circulant is 3n rounds; the
        // two entry-port-less start configurations make the preperiod
        // exactly one visit (3 rounds).
        for n in [4usize, 6, 9] {
            let g = circulant(n, &[1, 2]).unwrap();
            let s = detect_symbolic(&g, &WaitMover, 0).expect("wait-mover cycles");
            assert_eq!(s.tail(), SymbolicTail::Cycle);
            assert_eq!(s.preperiod(), 3, "circulant {n}");
            assert_eq!(s.period(), 3 * n as Round, "circulant {n}");
            assert_eq!(s.cycle().nodes.len(), n, "one segment per node visit");
        }
    }

    #[test]
    fn parked_and_terminated_tails_are_detected() {
        let g = oriented_ring(5).unwrap();
        let parked = detect_symbolic(&g, &KThenPark(3), 0).expect("parked detects");
        assert_eq!(parked.tail(), SymbolicTail::Parked);
        assert_eq!(parked.preperiod(), 3, "parks right after its third move");
        assert_eq!(parked.period(), 0);

        let halted = detect_symbolic(&g, &KThenHalt(3), 0).expect("halted detects");
        assert_eq!(halted.tail(), SymbolicTail::Terminated);
        assert_eq!(halted.period(), 0);
        let t = halted.materialize(100);
        assert!(t.terminated());
        assert_eq!(t.total_moves(), 3);
    }

    #[test]
    fn materialisation_is_bit_identical_to_cold_recording() {
        // A cycle detected once serves *any* horizon: materialising the
        // symbolic timeline at h is segment-for-segment identical to
        // recording the program fresh at h (and hence to
        // `Timeline::truncate`, which is pinned against fresh recordings).
        let horizons: &[Round] = &[0, 1, 2, 3, 5, 17, 99, 256, 1000, 4999];
        let g = oriented_ring(8).unwrap();
        let programs: &[&dyn FiniteStateProgram] =
            &[&SweepWalker { seed: 0x5EED }, &Rotor, &WaitMover, &KThenPark(3), &KThenHalt(3)];
        for &program in programs {
            let agent: &dyn AgentProgram =
                &(|nav: &mut dyn Navigator| drive_finite_state(program, nav));
            for start in 0..g.num_nodes() {
                let s = detect_symbolic(&g, program, start).expect("detection converges");
                for &h in horizons {
                    assert_eq!(
                        s.materialize(h),
                        Timeline::record(&g, agent, start, h),
                        "start {start}, horizon {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn symbolic_merge_matches_explicit_on_unrollable_horizons() {
        let g = oriented_ring(8).unwrap();
        let walker = SweepWalker { seed: 0x5EED };
        let cache = TrajectoryCache::new(&g, &walker, 60_000);
        for u in 0..8 {
            for v in 0..8 {
                for delta in 0..4 as Round {
                    let stic = Stic::new(u, v, delta);
                    for h in [0 as Round, 1, 7, 64, 257, 9999, 60_000] {
                        let explicit = cache.simulate_capped(&stic, h);
                        let symbolic =
                            cache.simulate_symbolic(&stic, h).expect("walker is finite-state");
                        assert_eq!(explicit, symbolic, "({u}, {v}, {delta}) at {h}");
                    }
                }
            }
        }
    }

    #[test]
    fn astronomical_horizons_resolve_without_unrolling() {
        let g = oriented_ring(8).unwrap();
        let walker = SweepWalker { seed: 0x5EED };
        let huge: Round = 1 << 40;
        assert!(huge > UNROLL_CAP);
        let cache = TrajectoryCache::new(&g, &walker, huge);
        let small = TrajectoryCache::new(&g, &walker, 60_000);
        for u in 0..8 {
            for v in 0..8 {
                let stic = Stic::new(u, v, 2);
                let big = cache.simulate_capped(&stic, huge);
                assert_eq!(big.horizon, huge);
                let probe = small.simulate_capped(&stic, 60_000);
                match probe.meeting {
                    Some(m) => {
                        // an early meeting is final at every horizon
                        assert_eq!(big.meeting, Some(m), "({u}, {v})");
                    }
                    None => assert_eq!(big.meeting, None, "({u}, {v})"),
                }
            }
        }
        // no explicit timeline was ever recorded at the astronomical horizon
        assert_eq!(cache.computed(), 0);
        assert_eq!(cache.computed_symbolic(), 8);
    }

    #[test]
    fn large_delays_reduce_and_match_the_explicit_kernel() {
        // Delay reduction is pinned differentially: at any δ the symbolic
        // merge must stay bit-identical to the explicit kernel over fresh
        // materialisations — including δ large enough that the merge shifts
        // back by many full earlier-cycles, and including the parked /
        // terminated degenerate tails whose alignment period is 1.
        let h: Round = 60_000;
        let g = oriented_ring(8).unwrap();
        let programs: &[&dyn FiniteStateProgram] =
            &[&SweepWalker { seed: 0x5EED }, &WaitMover, &KThenPark(3), &KThenHalt(3)];
        for &program in programs {
            let tls: Vec<SymbolicTimeline> = (0..8)
                .map(|s| detect_symbolic(&g, program, s).expect("detection converges"))
                .collect();
            for (u, v) in [(0usize, 3usize), (2, 2), (5, 1)] {
                let me = tls[u].materialize(h);
                let ml = tls[v].materialize(h);
                for delta in [0 as Round, 1, 7, 97, 1_000, 12_345, 59_999, 60_000] {
                    let stic = Stic::new(u, v, delta);
                    let explicit = merge_timelines(&me, &ml, &stic, h);
                    let symbolic = merge_symbolic(&tls[u], &tls[v], &stic, h)
                        .expect("window fits the segment cap");
                    assert_eq!(explicit, symbolic, "({u}, {v}, {delta})");
                }
            }
        }
    }

    #[test]
    fn astronomical_delays_resolve_without_unrolling() {
        // δ ~ 2^40: without delay reduction the alignment window itself
        // grows with the delay and the merge would unroll 2^40 rounds.  On
        // an oriented ring two rotors keep the constant separation
        // `(v − u − δ) mod n`, so the closed form decides every residue:
        // they meet exactly at global round δ iff `δ ≡ v − u (mod n)`, and
        // never otherwise.  The met cases are pinned against an explicit
        // small-δ control shifted by the closed-form offset.
        let n = 8usize;
        let g = oriented_ring(n).unwrap();
        let tls: Vec<SymbolicTimeline> =
            (0..n).map(|s| detect_symbolic(&g, &Rotor, s).expect("rotor cycles")).collect();
        let h: Round = (1 << 40) + 16;
        for (u, v) in [(0usize, 3usize), (1, 6), (4, 4)] {
            let residue = (v + n - u) as Round % n as Round;
            let small_delta = residue;
            let control = merge_timelines(
                &tls[u].materialize(64),
                &tls[v].materialize(64),
                &Stic::new(u, v, small_delta),
                64,
            );
            let control_meet = control.meeting.expect("aligned control run meets");
            for r in 0..n as Round {
                let delta: Round = (1 << 40) + r; // 2^40 ≡ 0 (mod 8)
                let out = merge_symbolic(&tls[u], &tls[v], &Stic::new(u, v, delta), h)
                    .expect("window fits the segment cap");
                assert_eq!(out.horizon, h);
                if r == residue {
                    let m = out.meeting.expect("aligned rotors meet at the delay round");
                    assert_eq!(m.global_round, delta, "({u}, {v}, +{r})");
                    assert_eq!(m.later_round, control_meet.later_round);
                    assert_eq!(m.node, control_meet.node, "δ ≡ δ_small (mod n)");
                    assert_eq!(
                        u128::from(out.earlier_moves),
                        u128::from(control.earlier_moves) + (delta - small_delta),
                        "the rotor moves once per round of extra delay"
                    );
                    assert_eq!(out.later_moves, control.later_moves);
                } else {
                    assert!(!out.met(), "({u}, {v}, +{r}): separation is constant and nonzero");
                    assert_eq!(u128::from(out.earlier_moves), h, "one move per round up to h");
                    assert_eq!(u128::from(out.later_moves), h - delta);
                }
            }
        }
    }

    #[test]
    fn oversized_alignment_windows_decline_instead_of_unrolling() {
        // Two dense rotors with near-coprime ~1000-state cycles: the
        // alignment window is lcm(8·1021, 8·1019) ≈ 8.3M rounds at one
        // segment per round, past MERGE_SEG_CAP.  Beyond the window the
        // merge must *decline* — never unroll millions of segments at an
        // astronomical horizon — and within explicit reach it stays exact.
        let g = oriented_ring(8).unwrap();
        let a = detect_symbolic(&g, &ModRotor(1021), 0).expect("dense rotor cycles");
        let b = detect_symbolic(&g, &ModRotor(1019), 3).expect("dense rotor cycles");
        assert!(
            lcm(a.alignment_period(), b.alignment_period()) > MERGE_SEG_CAP as Round,
            "the construction must actually overflow the cap"
        );
        let stic = Stic::new(0, 3, 1);
        assert_eq!(merge_symbolic(&a, &b, &stic, 1 << 40), None, "oversized window must decline");

        let h: Round = 50_000;
        let explicit = merge_timelines(&a.materialize(h), &b.materialize(h), &stic, h);
        let bounded = merge_symbolic(&a, &b, &stic, h).expect("within the segment cap");
        assert_eq!(bounded, explicit, "unrollable horizons stay exact");
    }

    #[test]
    fn saturated_windows_with_sparse_segments_still_resolve_exactly() {
        // Wait-based periods near 2^80 make the cycle lcm saturate Round —
        // the alignment window degenerates to Round::MAX — but one cycle is
        // only 6 segments, so the segment-cost gate admits an *exact*
        // materialised merge at a 2^90 horizon (and the explicit recorder,
        // which coalesces waits, can pin it differentially: ~2^10 decisions
        // cover the whole horizon).
        let g = oriented_ring(3).unwrap();
        let slow_a = SlowRotor(1 << 80);
        let slow_b = SlowRotor((1 << 80) + 6);
        let a = detect_symbolic(&g, &slow_a, 0).expect("sparse rotor cycles");
        let b = detect_symbolic(&g, &slow_b, 1).expect("sparse rotor cycles");
        assert_eq!(
            lcm(a.alignment_period(), b.alignment_period()),
            Round::MAX,
            "the construction must actually saturate the alignment lcm"
        );
        let h: Round = 1 << 90;
        let stic = Stic::new(0, 1, 2);
        let out = merge_symbolic(&a, &b, &stic, h).expect("sparse sides fit the segment cap");
        let agent_a: &dyn AgentProgram = &slow_a;
        let agent_b: &dyn AgentProgram = &slow_b;
        let explicit = merge_timelines(
            &Timeline::record(&g, agent_a, 0, h),
            &Timeline::record(&g, agent_b, 1, h),
            &stic,
            h,
        );
        assert_eq!(out, explicit, "saturated-window merge must stay bit-identical");
    }

    #[test]
    fn from_raw_round_trips_and_rejects_tampering() {
        let g = oriented_ring(6).unwrap();
        let s = detect_symbolic(&g, &SweepWalker { seed: 7 }, 1).expect("detection converges");
        let rebuilt = SymbolicTimeline::from_raw(
            s.num_graph_nodes(),
            s.preperiod(),
            s.period(),
            s.tail(),
            s.prefix().clone(),
            s.cycle().clone(),
        )
        .expect("round-trips");
        assert_eq!(rebuilt, s);

        let mut bad_cycle = s.cycle().clone();
        bad_cycle.nodes[0] = (bad_cycle.nodes[0] + 1) % 6;
        assert!(SymbolicTimeline::from_raw(
            s.num_graph_nodes(),
            s.preperiod(),
            s.period(),
            s.tail(),
            s.prefix().clone(),
            bad_cycle,
        )
        .is_err());

        assert!(SymbolicTimeline::from_raw(
            s.num_graph_nodes(),
            s.preperiod(),
            s.period() + 1,
            s.tail(),
            s.prefix().clone(),
            s.cycle().clone(),
        )
        .is_err());
    }
}
