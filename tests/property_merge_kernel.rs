//! Differential property tests of the **timeline-merge kernels**: the
//! branch-light sort-merge ([`merge_timelines`]), the shared-pass delay
//! sweep ([`merge_timelines_deltas_with`]) and the resumable extension
//! ([`merge_timelines_extend`]) are each pinned bit-identical to
//!
//! * the retained pre-kernel **reference oracles** (binary-probe
//!   implementations kept under the `ref-oracle` feature), and
//! * the **Lockstep and Streaming engines**, which never touch timelines
//!   at all.
//!
//! Everything the warm store serves flows through these kernels, so these
//! differentials are what lets the zero-copy paths claim exactness.
//!
//! [`merge_timelines`]: anonrv::sim::merge_timelines
//! [`merge_timelines_deltas_with`]: anonrv::sim::merge_timelines_deltas_with
//! [`merge_timelines_extend`]: anonrv::sim::merge_timelines_extend

use proptest::prelude::*;

use anonrv::graph::generators::{oriented_ring, random_connected};
use anonrv::sim::{
    merge_timelines, merge_timelines_deltas_reference, merge_timelines_deltas_with,
    merge_timelines_extend, merge_timelines_reference, simulate_with, AgentProgram, EngineConfig,
    MergeScratch, Navigator, Round, Stic, Stop, Timeline,
};

/// Deterministic scripted agent (same idiom as the engine property tests):
/// a seeded LCG decides each round between moving through a pseudo-random
/// port and short waits, optionally terminating after a bounded number of
/// actions.
struct ScriptedWalker {
    seed: u64,
    lifetime: Option<u64>,
}

impl AgentProgram for ScriptedWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        let mut actions = 0u64;
        loop {
            if let Some(lifetime) = self.lifetime {
                if actions >= lifetime {
                    return Ok(());
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 9 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
            actions += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sort-merge kernel against the binary-probe reference oracle and
    /// both timeline-free engines, over random connected graphs.
    #[test]
    fn merge_kernel_matches_reference_and_both_engines(
        n in 2usize..10,
        extra in 0usize..5,
        graph_seed in 0u64..200,
        walker_seed in 0u64..1_000,
        lifetime_sel in 0u64..80,
        horizon in 0u64..200,
        u_sel in 0usize..10,
        v_sel in 0usize..10,
        delay in 0u64..220, // sometimes beyond the horizon: no-show path
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).expect("valid generator parameters");
        let lifetime = (lifetime_sel < 40).then_some(lifetime_sel + 1);
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let horizon = horizon as Round;
        let stic = Stic::new(u_sel % n, v_sel % n, delay as Round);

        let earlier = Timeline::record(&g, &program, stic.earlier, horizon);
        let later = Timeline::record(&g, &program, stic.later, horizon);
        let merged = merge_timelines(&earlier, &later, &stic, horizon);

        let oracle = merge_timelines_reference(&earlier, &later, &stic, horizon);
        prop_assert_eq!(merged, oracle, "{} kernel vs reference", stic);
        for config in [EngineConfig::lockstep(horizon), EngineConfig::streaming(horizon)] {
            let direct = simulate_with(&g, &program, &program, &stic, config);
            prop_assert_eq!(merged, direct, "{} kernel vs engine", stic);
        }
    }

    /// The shared-pass delay sweep against the reference sweep oracle and
    /// against one independent kernel merge per delay — including unsorted,
    /// duplicated and beyond-horizon delays, with one scratch reused across
    /// every case (the sweep sessions' usage pattern).
    #[test]
    fn delta_sweep_matches_reference_and_per_delay_merges(
        ring in 3usize..9,
        walker_seed in 0u64..1_000,
        lifetime_sel in 0u64..60,
        horizon in 0u64..160,
        raw_deltas in proptest::collection::vec(0u64..180, 0..12),
    ) {
        let g = oriented_ring(ring).expect("valid ring");
        let lifetime = (lifetime_sel < 30).then_some(lifetime_sel + 1);
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let horizon = horizon as Round;
        let deltas: Vec<Round> = raw_deltas.iter().map(|&d| d as Round).collect();

        let earlier = Timeline::record(&g, &program, 0, horizon);
        let later = Timeline::record(&g, &program, 1 % ring, horizon);
        let mut scratch = MergeScratch::new();
        let swept = merge_timelines_deltas_with(&mut scratch, &earlier, &later, &deltas, horizon);

        let oracle = merge_timelines_deltas_reference(&earlier, &later, &deltas, horizon);
        prop_assert_eq!(&swept, &oracle, "sweep vs reference");
        for (i, &delta) in deltas.iter().enumerate() {
            let stic = Stic::new(0, 1 % ring, delta);
            let single = merge_timelines(&earlier, &later, &stic, horizon);
            prop_assert_eq!(swept[i], single, "{} sweep slot vs independent merge", stic);
        }
    }

    /// Extension resumes instead of restarting, bit-identically: merging at
    /// `h`, then extending the outcome to `H >= h`, equals merging at `H`
    /// directly — for every `(h, H)` cut of one recorded pair, met or not.
    #[test]
    fn extension_is_bit_identical_to_a_direct_merge_at_the_larger_horizon(
        n in 2usize..10,
        extra in 0usize..5,
        graph_seed in 0u64..200,
        walker_seed in 0u64..1_000,
        lifetime_sel in 0u64..80,
        long_horizon in 0u64..160,
        short_frac in 0u64..101,
        delay in 0u64..180,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).expect("valid generator parameters");
        let lifetime = (lifetime_sel < 40).then_some(lifetime_sel + 1);
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let long_horizon = long_horizon as Round;
        let short = (short_frac as Round * long_horizon) / 100; // <= long
        let stic = Stic::new(0, (1 + graph_seed as usize) % n, delay as Round);

        let earlier = Timeline::record(&g, &program, stic.earlier, long_horizon);
        let later = Timeline::record(&g, &program, stic.later, long_horizon);
        let prior = merge_timelines(&earlier, &later, &stic, short);
        let extended = merge_timelines_extend(&earlier, &later, &stic, &prior, long_horizon);
        let direct = merge_timelines(&earlier, &later, &stic, long_horizon);
        prop_assert_eq!(extended, direct, "{} extended {} -> {}", stic, short, long_horizon);
        // extending to the same horizon is the identity
        let same = merge_timelines_extend(&earlier, &later, &stic, &prior, short);
        prop_assert_eq!(same, prior, "{} self-extension", stic);
    }
}
