//! The `AsymmRV` substitute: label-based rendezvous for nonsymmetric starting
//! positions (Proposition 3.1 of the paper, black box from
//! Czyzowicz–Kosowski–Pelc 2012).
//!
//! See DESIGN.md §4.2.  The procedure has two stages:
//!
//! 1. **Label computation** — through a [`LabelScheme`], each agent computes
//!    a fixed-length bit label of its starting position, in a number of
//!    rounds depending only on `n`, ending back at its start node.  The delay
//!    between the agents is therefore preserved.
//! 2. **Explore/wait schedule** — for each label bit `j = 0, 1, ..., ℓ−1`
//!    the agent runs two *sub-slots* of identical length
//!    `B + 2·δ̂` rounds, where `B = 2(M+1)` is the length of one exploration
//!    block (UXS application plus backtrack) and `δ̂` is the delay budget:
//!
//!    * sub-slot `A`: if bit `j` is `1` → wait `δ̂`, explore, wait `δ̂`;
//!      otherwise wait the whole sub-slot at the start node;
//!    * sub-slot `B`: the same with the roles of `0` and `1` exchanged.
//!
//! **Why this meets** (containment argument, also exercised by the tests):
//! let the two agents have labels differing at bit `j` and actual delay
//! `δ ≤ δ̂`.  Their sub-slot windows are rigidly offset by `δ`.  In the
//! sub-slot where agent `X` explores and agent `Y` waits, `X`'s exploration
//! window `[c_X + a + δ̂, c_X + a + δ̂ + B)` is contained in `Y`'s waiting
//! window `[c_Y + a, c_Y + a + B + 2δ̂)` for either assignment of
//! earlier/later to `X`/`Y` (the `δ̂`-wait margins absorb the offset in both
//! directions).  Since the exploration block visits every node of the graph
//! (UXS coverage) while `Y` sits at its starting node, the agents meet.
//!
//! Deviation from the paper: the substitute takes a delay *budget* `δ̂` and
//! is guaranteed only for actual delays `≤ δ̂`, whereas the original `P(n)`
//! is delay-independent.  `UniversalRV` passes its phase's delay guess, which
//! equals the true delay in the phase that matters, so Theorem 3.1 is
//! unaffected; the standalone wrapper [`AsymmRvUnknownDelay`] recovers
//! delay-independence by doubling the budget across rounds of the schedule.

use anonrv_sim::{AgentProgram, Navigator, Round, Stop};
use anonrv_uxs::UxsProvider;

use crate::bounds::{asymm_block_rounds, asymm_rv_duration};
use crate::label::LabelScheme;

/// The label-based `AsymmRV(n, δ̂)` substitute as an agent program.
pub struct AsymmRv<'a, L: LabelScheme> {
    /// Assumed size of the graph.
    pub n: usize,
    /// Delay budget `δ̂`: rendezvous is guaranteed (for label-distinct
    /// starting positions) whenever the actual delay is at most `δ̂`.
    pub delay_budget: Round,
    /// Label scheme.
    pub scheme: &'a L,
    /// Source of the UXS used for the exploration blocks.
    pub uxs: &'a dyn UxsProvider,
}

impl<'a, L: LabelScheme> AsymmRv<'a, L> {
    /// Create the procedure.
    pub fn new(n: usize, delay_budget: Round, scheme: &'a L, uxs: &'a dyn UxsProvider) -> Self {
        AsymmRv { n, delay_budget, scheme, uxs }
    }

    /// Exact duration of the full procedure (when no rendezvous interrupts
    /// it); this is the quantity playing the role of the paper's `P(n)`.
    pub fn full_duration(&self) -> Round {
        asymm_rv_duration(
            self.scheme.label_rounds(self.n),
            self.scheme.label_len(self.n),
            self.uxs.length(self.n),
            self.delay_budget,
        )
    }

    /// One exploration block: the UXS application followed by its backtrack
    /// (`2(M+1)` moves), ending at the node it started from.
    fn explore_block(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let y = self.uxs.sequence(self.n);
        let mut entry = nav.move_via(0)?;
        let mut backtrack = Vec::with_capacity(y.len() + 1);
        backtrack.push(entry);
        for &a in y.terms() {
            let p = (entry + a) % nav.degree();
            entry = nav.move_via(p)?;
            backtrack.push(entry);
        }
        for &q in backtrack.iter().rev() {
            nav.move_via(q)?;
        }
        Ok(())
    }

    /// One sub-slot: explore framed by `δ̂`-waits when `active`, otherwise a
    /// full-length wait at the start node.
    fn subslot(&self, nav: &mut dyn Navigator, active: bool) -> Result<(), Stop> {
        let block = asymm_block_rounds(self.uxs.length(self.n));
        if active {
            nav.wait(self.delay_budget)?;
            self.explore_block(nav)?;
            nav.wait(self.delay_budget)?;
        } else {
            nav.wait(block + 2 * self.delay_budget)?;
        }
        Ok(())
    }

    /// Execute the procedure body (shared with `UniversalRV`).
    pub fn execute(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let label = self.scheme.compute_label(nav, self.n)?;
        for &bit in &label {
            self.subslot(nav, bit)?;
            self.subslot(nav, !bit)?;
        }
        Ok(())
    }
}

impl<L: LabelScheme> AgentProgram for AsymmRv<'_, L> {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        self.execute(nav)
    }

    fn name(&self) -> &str {
        "AsymmRV"
    }
}

/// Standalone wrapper recovering delay-independence: runs `AsymmRv(n, δ̂)`
/// with doubling budgets `δ̂ = 1, 2, 4, ...` forever.  Two agents with
/// distinct labels and *any* actual delay `δ` meet at the latest in the round
/// with `δ̂ ≥ δ`, because every round has the same duration for both agents
/// (so the delay is preserved) and the budget eventually dominates the delay.
pub struct AsymmRvUnknownDelay<'a, L: LabelScheme> {
    /// Assumed size of the graph.
    pub n: usize,
    /// Label scheme.
    pub scheme: &'a L,
    /// UXS source.
    pub uxs: &'a dyn UxsProvider,
    /// Safety cap on the number of doubling rounds (`None` = run forever).
    pub max_rounds: Option<u32>,
}

impl<L: LabelScheme> AgentProgram for AsymmRvUnknownDelay<'_, L> {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut budget: Round = 1;
        let mut round = 0u32;
        loop {
            let inner = AsymmRv::new(self.n, budget, self.scheme, self.uxs);
            inner.execute(nav)?;
            budget = budget.saturating_mul(2);
            round += 1;
            if let Some(cap) = self.max_rounds {
                if round >= cap {
                    return Ok(());
                }
            }
        }
    }

    fn name(&self) -> &str {
        "AsymmRV-unknown-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TrailSignature;
    use anonrv_graph::generators::{caterpillar, lollipop, random_connected, star};
    use anonrv_graph::symmetry::OrbitPartition;
    use anonrv_graph::PortGraph;
    use anonrv_sim::{record_trace, simulate, Stic};
    use anonrv_uxs::PseudorandomUxs;

    fn meets(g: &PortGraph, stic: Stic, delay_budget: Round) -> Option<Round> {
        let scheme = TrailSignature::default();
        let uxs = PseudorandomUxs::default();
        let program = AsymmRv::new(g.num_nodes(), delay_budget, &scheme, &uxs);
        let horizon = stic.delay + program.full_duration() + 1;
        simulate(g, &program, &stic, horizon).rendezvous_time()
    }

    #[test]
    fn asymm_rv_meets_on_a_lollipop_for_various_delays() {
        let g = lollipop(4, 3).unwrap();
        for (u, v) in [(0usize, 6usize), (1, 5), (2, 3)] {
            for delay in [0 as Round, 1, 3, 7] {
                let t = meets(&g, Stic::new(u, v, delay), delay.max(1));
                assert!(t.is_some(), "pair ({u},{v}), delay {delay}");
            }
        }
    }

    #[test]
    fn asymm_rv_meets_with_either_agent_starting_first() {
        let g = caterpillar(4, 1).unwrap();
        let stic = Stic::new(0, 7, 2);
        assert!(meets(&g, stic, 2).is_some());
        assert!(meets(&g, stic.swapped(), 2).is_some());
    }

    #[test]
    fn asymm_rv_meets_when_the_budget_exceeds_the_delay() {
        let g = star(4).unwrap();
        // leaves of the star are pairwise nonsymmetric
        let t = meets(&g, Stic::new(1, 3, 2), 10);
        assert!(t.is_some());
    }

    #[test]
    fn asymm_rv_meets_on_random_nonsymmetric_workloads() {
        let scheme = TrailSignature::default();
        for seed in 0..4u64 {
            let g = random_connected(9, 4, seed).unwrap();
            let n = g.num_nodes();
            let partition = OrbitPartition::compute(&g);
            // pick the first nonsymmetric, label-distinct pair
            let pair = (0..n)
                .flat_map(|u| (0..n).map(move |v| (u, v)))
                .find(|&(u, v)| {
                    u != v && !partition.are_symmetric(u, v) && scheme.labels_distinct(&g, u, v, n)
                })
                .expect("random graphs have nonsymmetric pairs");
            let t = meets(&g, Stic::new(pair.0, pair.1, 3), 3);
            assert!(t.is_some(), "seed {seed}, pair {pair:?}");
        }
    }

    #[test]
    fn full_duration_matches_the_recorded_run() {
        let g = lollipop(4, 2).unwrap();
        let scheme = TrailSignature::default();
        let uxs = PseudorandomUxs::default();
        let program = AsymmRv::new(g.num_nodes(), 3, &scheme, &uxs);
        let (trace, stats) = record_trace(&g, &program, 0, Round::MAX, 1 << 22);
        assert!(trace.terminated);
        assert_eq!(stats.rounds, program.full_duration() + 1);
        assert_eq!(trace.final_position(), 0);
    }

    #[test]
    fn duration_is_identical_for_both_agents_regardless_of_position() {
        let g = lollipop(5, 3).unwrap();
        let scheme = TrailSignature::default();
        let uxs = PseudorandomUxs::default();
        let program = AsymmRv::new(g.num_nodes(), 2, &scheme, &uxs);
        let (_, s0) = record_trace(&g, &program, 0, Round::MAX, 1 << 22);
        let (_, s7) = record_trace(&g, &program, 7, Round::MAX, 1 << 22);
        assert_eq!(s0.rounds, s7.rounds);
    }

    #[test]
    fn unknown_delay_wrapper_meets_with_a_delay_larger_than_the_first_budgets() {
        let g = lollipop(4, 3).unwrap();
        let scheme = TrailSignature::default();
        let uxs = PseudorandomUxs::default();
        let program =
            AsymmRvUnknownDelay { n: g.num_nodes(), scheme: &scheme, uxs: &uxs, max_rounds: None };
        let stic = Stic::new(0, 6, 9); // delay 9 > first budgets 1, 2, 4
        let out = simulate(&g, &program, &stic, 10_000_000);
        assert!(out.met(), "doubling budgets must eventually cover the delay");
    }
}
