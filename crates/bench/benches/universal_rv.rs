//! EXP-T31 bench: Algorithm `UniversalRV` run to rendezvous with zero
//! a-priori knowledge, on the three STIC kinds of Corollary 3.1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_bench::{expect_met, run_universal};
use anonrv_graph::generators::{lollipop, oriented_ring, two_node_graph};
use anonrv_sim::Stic;

fn bench_universal_rv(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal_rv");
    group.sample_size(10);
    let two = two_node_graph();
    group.bench_function("two-node graph, symmetric, delta=1", |b| {
        b.iter(|| expect_met(&run_universal(black_box(&two), Stic::new(0, 1, 1), 1, 1)))
    });
    let ring = oriented_ring(4).unwrap();
    group.bench_function("ring-4, symmetric, delta=Shrink=1", |b| {
        b.iter(|| expect_met(&run_universal(black_box(&ring), Stic::new(0, 1, 1), 1, 1)))
    });
    let lp = lollipop(3, 1).unwrap();
    group.bench_function("lollipop-3-1, nonsymmetric, delta=0", |b| {
        b.iter(|| expect_met(&run_universal(black_box(&lp), Stic::new(0, 3, 0), 1, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_universal_rv);
criterion_main!(benches);
