//! Lightweight tabular reports.
//!
//! Every experiment produces one or more [`Table`]s: the same rows that
//! EXPERIMENTS.md records, printable as aligned ASCII and serialisable to
//! JSON for archival.  Keeping this in-crate (rather than pulling a table
//! crate) keeps the dependency set to the pre-approved list.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A titled table with a header row, data rows and free-form notes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment identifier, e.g. `"EXP-L32"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; every row should have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.headers.len(), "row width mismatch in table {}", self.id);
        self.rows.push(row);
    }

    /// Append a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column index by header name.
    pub fn column(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// All values of the named column.
    pub fn column_values(&self, header: &str) -> Vec<&str> {
        match self.column(header) {
            Some(i) => self.rows.iter().map(|r| r[i].as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Render the table as aligned, pipe-separated ASCII (GitHub-flavoured
    /// markdown, so it can be pasted into EXPERIMENTS.md verbatim).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out);
            let _ = writeln!(out, "> {}", note);
        }
        out
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialisation cannot fail")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A group of tables produced by one experiment binary (or by `exp_all`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Report {
    /// The tables, in presentation order.
    pub tables: Vec<Table>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Render every table.
    pub fn render(&self) -> String {
        self.tables.iter().map(Table::render).collect::<Vec<_>>().join("\n")
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }

    /// Find a table by id.
    pub fn table(&self, id: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.id == id)
    }
}

/// One workload's pair-orbit planning statistics: how far the sweep planner
/// compressed its STIC batch, plus the cache and shard provenance that make
/// `--exhaustive` runs auditable (which work was actually re-executed, and
/// by which slice of a sharded run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCompression {
    /// Instance label.
    pub label: String,
    /// Number of ordered pairs (`n²`).
    pub pairs: usize,
    /// Number of pair-orbit classes.
    pub classes: usize,
    /// Representative simulations executed.
    pub executed: usize,
    /// Member STICs answered.
    pub answered: usize,
    /// Trajectory timelines served warm from the persistent plan cache
    /// (`anonrv-store`); always 0 for in-memory runs without a cache dir.
    pub cache_hits: usize,
    /// The subset of [`PlanCompression::cache_hits`] served by **prefix
    /// truncation** of a recording made at a longer horizon (exact-horizon
    /// hits are `cache_hits - cache_prefix_hits`).
    pub cache_prefix_hits: usize,
    /// Trajectory timelines recorded cold by executing the agent program.
    pub cache_misses: usize,
    /// Shard provenance when the instance was produced by one slice of a
    /// sharded run; `None` for unsharded execution.
    pub shard: Option<ShardProvenance>,
}

/// Which slice of a sharded run produced an instance's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardProvenance {
    /// Shard index, in `0..shards`.
    pub index: usize,
    /// Total number of shards.
    pub shards: usize,
}

impl PlanCompression {
    /// A fresh per-instance accumulator: no work executed yet, no cache
    /// traffic, unsharded.
    pub fn new(label: impl Into<String>, pairs: usize, classes: usize) -> Self {
        PlanCompression {
            label: label.into(),
            pairs,
            classes,
            executed: 0,
            answered: 0,
            cache_hits: 0,
            cache_prefix_hits: 0,
            cache_misses: 0,
            shard: None,
        }
    }

    /// Fold a [`SweepSession`](anonrv_store::SweepSession)'s statistics into
    /// this instance's accumulator — the one bridge between the
    /// orchestration layer's [`SessionStats`](anonrv_store::SessionStats)
    /// and the report tables, so the experiments cannot each count
    /// differently.
    pub fn absorb(&mut self, stats: &anonrv_store::SessionStats) {
        self.executed += stats.executed;
        self.answered += stats.answered;
        self.cache_hits += stats.timeline_hits;
        self.cache_prefix_hits += stats.timeline_prefix_hits;
        self.cache_misses += stats.timeline_misses;
        if let Some((index, shards)) = stats.shard {
            self.shard = Some(ShardProvenance { index, shards });
        }
    }

    /// The pair-space compression ratio `n² / classes`.
    pub fn ratio(&self) -> f64 {
        self.pairs as f64 / self.classes as f64
    }

    /// The cache provenance rendered for the note column: `"cache 3w/5c"` =
    /// 3 timelines warm, 5 recorded cold; prefix-served hits annotate the
    /// warm count (`"cache 3w(2p)/5c"` = 2 of the 3 by prefix truncation of
    /// a longer recording).
    pub fn cache_column(&self) -> String {
        if self.cache_prefix_hits > 0 {
            format!(
                "cache {}w({}p)/{}c",
                self.cache_hits, self.cache_prefix_hits, self.cache_misses
            )
        } else {
            format!("cache {}w/{}c", self.cache_hits, self.cache_misses)
        }
    }

    /// The shard provenance rendered for the note column (`"shard 0/2"`, or
    /// `"unsharded"`).
    pub fn shard_column(&self) -> String {
        match self.shard {
            Some(ShardProvenance { index, shards }) => format!("shard {index}/{shards}"),
            None => "unsharded".to_string(),
        }
    }
}

/// Render per-instance planning statistics as a single table note,
/// including the cache hit/miss and shard provenance columns.
pub fn compression_note(stats: &[PlanCompression]) -> String {
    let total_answered: usize = stats.iter().map(|s| s.answered).sum();
    let total_executed: usize = stats.iter().map(|s| s.executed).sum();
    let total_hits: usize = stats.iter().map(|s| s.cache_hits).sum();
    let total_misses: usize = stats.iter().map(|s| s.cache_misses).sum();
    let detail: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "{}: {} pairs -> {} orbits ({:.1}x), {}/{} sims, {}, {}",
                s.label,
                s.pairs,
                s.classes,
                s.ratio(),
                s.executed,
                s.answered,
                s.cache_column(),
                s.shard_column(),
            )
        })
        .collect();
    format!(
        "Pair-orbit planning executed {total_executed} representative simulations for \
         {total_answered} STICs (timelines: {total_hits} warm / {total_misses} recorded) — {}.",
        detail.join("; ")
    )
}

/// Format a `u128` round count compactly (scientific-ish for huge values).
pub fn fmt_rounds(rounds: u128) -> String {
    if rounds < 1_000_000 {
        rounds.to_string()
    } else {
        let mut value = rounds as f64;
        let mut exp = 0u32;
        while value >= 10.0 {
            value /= 10.0;
            exp += 1;
        }
        format!("{value:.2}e{exp}")
    }
}

/// Format an optional round count (`-` when absent).
pub fn fmt_opt_rounds(rounds: Option<u128>) -> String {
    rounds.map(fmt_rounds).unwrap_or_else(|| "-".to_string())
}

/// Format a ratio with 2 decimals, guarding against division by zero.
pub fn fmt_ratio(numerator: u128, denominator: u128) -> String {
    if denominator == 0 {
        "-".to_string()
    } else {
        format!("{:.3}", numerator as f64 / denominator as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns_columns_and_keeps_order() {
        let mut t = Table::new("EXP-X", "demo", &["family", "n", "time"]);
        t.push_row(["ring", "6", "12"]);
        t.push_row(["torus", "16", "1234"]);
        t.push_note("a note");
        let rendered = t.render();
        assert!(rendered.contains("## EXP-X — demo"));
        assert!(rendered.contains("| family | n  | time |"));
        assert!(rendered.contains("| torus  | 16 | 1234 |"));
        assert!(rendered.contains("> a note"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn table_columns_are_addressable_by_name() {
        let mut t = Table::new("EXP-X", "demo", &["k", "met"]);
        t.push_row(["1", "yes"]);
        t.push_row(["2", "no"]);
        assert_eq!(t.column("met"), Some(1));
        assert_eq!(t.column("missing"), None);
        assert_eq!(t.column_values("met"), vec!["yes", "no"]);
        assert!(t.column_values("missing").is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Report::new();
        let mut t = Table::new("EXP-Y", "json", &["a"]);
        t.push_row(["1"]);
        r.push(t);
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.table("EXP-Y").is_some());
        assert!(r.table("EXP-Z").is_none());
    }

    #[test]
    fn compression_note_summarises_per_instance_stats() {
        let mut ring = PlanCompression::new("ring-8", 64, 8);
        ring.executed = 6;
        ring.answered = 24;
        ring.cache_hits = 5;
        ring.cache_prefix_hits = 2;
        ring.cache_misses = 3;
        ring.shard = Some(ShardProvenance { index: 0, shards: 2 });
        let mut torus = PlanCompression::new("torus-3x4", 144, 12);
        torus.executed = 4;
        torus.answered = 16;
        torus.cache_misses = 12;
        let stats = vec![ring, torus];
        assert_eq!(stats[0].ratio(), 8.0);
        let note = compression_note(&stats);
        assert!(note.contains("10 representative simulations for 40 STICs"), "{note}");
        assert!(note.contains("timelines: 5 warm / 15 recorded"), "{note}");
        assert!(
            note.contains(
                "ring-8: 64 pairs -> 8 orbits (8.0x), 6/24 sims, cache 5w(2p)/3c, shard 0/2"
            ),
            "{note}"
        );
        assert!(
            note.contains(
                "torus-3x4: 144 pairs -> 12 orbits (12.0x), 4/16 sims, cache 0w/12c, unsharded"
            ),
            "{note}"
        );
    }

    #[test]
    fn absorb_folds_session_stats_into_the_accumulator() {
        use anonrv_store::{Provenance, SessionStats};
        let mut instance = PlanCompression::new("torus-3x4", 144, 12);
        instance.absorb(&SessionStats {
            orbits: Provenance::Warm,
            timeline_hits: 4,
            timeline_prefix_hits: 3,
            timeline_misses: 2,
            symbolic_timelines: 0,
            executed: 7,
            answered: 20,
            outcome: None,
            shard: Some((1, 2)),
        });
        instance.absorb(&SessionStats {
            orbits: Provenance::Warm,
            timeline_hits: 1,
            timeline_prefix_hits: 0,
            timeline_misses: 0,
            symbolic_timelines: 0,
            executed: 1,
            answered: 4,
            outcome: None,
            shard: None,
        });
        assert_eq!((instance.executed, instance.answered), (8, 24));
        assert_eq!(instance.cache_column(), "cache 5w(3p)/2c");
        assert_eq!(instance.shard_column(), "shard 1/2");
    }

    #[test]
    fn round_formatting() {
        assert_eq!(fmt_rounds(999_999), "999999");
        assert_eq!(fmt_rounds(1_000_000), "1.00e6");
        assert_eq!(fmt_rounds(u128::MAX), "3.40e38");
        assert_eq!(fmt_opt_rounds(None), "-");
        assert_eq!(fmt_opt_rounds(Some(42)), "42");
        assert_eq!(fmt_ratio(1, 0), "-");
        assert_eq!(fmt_ratio(3, 4), "0.750");
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("EXP-D", "display", &["x"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
