//! Cross-crate integration tests for the feasibility characterisation
//! (Corollary 3.1) and its ingredients (views, orbits, Shrink).

use anonrv_core::feasibility::{classify, classify_all_pairs, is_feasible, SticClass};
use anonrv_experiments::suite::{
    nonsymmetric_workloads, symmetric_pairs, symmetric_workloads, Scale,
};
use anonrv_graph::distance::distance;
use anonrv_graph::shrink::{shrink, shrink_all_symmetric_pairs, shrink_brute_force};
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::view::symmetric_by_views;

#[test]
fn orbit_partition_agrees_with_view_equality_on_every_quick_workload() {
    let mut workloads = symmetric_workloads(Scale::Quick);
    workloads.extend(nonsymmetric_workloads(Scale::Quick));
    for w in &workloads {
        let g = &w.graph;
        let partition = OrbitPartition::compute(g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u < v {
                    assert_eq!(
                        partition.are_symmetric(u, v),
                        symmetric_by_views(g, u, v),
                        "{}: orbit partition and truncated views disagree on ({u}, {v})",
                        w.label
                    );
                }
            }
        }
    }
}

#[test]
fn classification_follows_the_symmetry_and_shrink_split() {
    let mut workloads = symmetric_workloads(Scale::Quick);
    workloads.extend(nonsymmetric_workloads(Scale::Quick));
    for w in &workloads {
        let g = &w.graph;
        let partition = OrbitPartition::compute(g);
        for u in g.nodes().take(4) {
            for v in g.nodes().take(6) {
                if u == v {
                    assert_eq!(classify(g, u, v, 0), SticClass::SameNode);
                    continue;
                }
                let s = shrink(g, u, v).unwrap();
                for delta in [0u128, 1, s as u128, s as u128 + 3] {
                    let class = classify(g, u, v, delta);
                    if !partition.are_symmetric(u, v) {
                        assert_eq!(class, SticClass::Nonsymmetric, "{} ({u},{v})", w.label);
                        assert!(is_feasible(g, u, v, delta));
                    } else if delta >= s as u128 {
                        assert_eq!(class, SticClass::SymmetricFeasible { shrink: s });
                        assert!(is_feasible(g, u, v, delta));
                    } else {
                        assert_eq!(class, SticClass::SymmetricInfeasible { shrink: s });
                        assert!(!is_feasible(g, u, v, delta));
                    }
                }
            }
        }
    }
}

#[test]
fn feasibility_is_monotone_in_the_delay() {
    for w in symmetric_workloads(Scale::Quick) {
        for p in symmetric_pairs(&w.graph, 6) {
            let mut previous = false;
            for delta in 0..(p.shrink as u128 + 3) {
                let now = is_feasible(&w.graph, p.u, p.v, delta);
                assert!(
                    !previous || now,
                    "{}: feasibility must be monotone in delta (pair ({}, {}))",
                    w.label,
                    p.u,
                    p.v
                );
                previous = now;
            }
            assert!(previous, "sufficiently large delays are always feasible");
        }
    }
}

#[test]
fn shrink_never_exceeds_the_distance_and_is_positive_on_symmetric_pairs() {
    for w in symmetric_workloads(Scale::Quick) {
        let g = &w.graph;
        for p in symmetric_pairs(g, 6) {
            assert!(p.shrink <= distance(g, p.u, p.v), "{}", w.label);
            assert!(p.shrink >= 1, "symmetric distinct nodes can never be merged ({})", w.label);
        }
    }
}

#[test]
fn shrink_agrees_with_brute_force_on_small_low_degree_graphs() {
    // the brute force enumerates every port sequence up to the given length,
    // so keep it to graphs where degree^length stays tiny
    for w in symmetric_workloads(Scale::Quick) {
        let g = &w.graph;
        if g.num_nodes() > 8 || g.max_degree() > 2 {
            continue;
        }
        for p in symmetric_pairs(g, 4) {
            let brute = shrink_brute_force(g, p.u, p.v, g.num_nodes());
            assert_eq!(p.shrink, brute, "{}: BFS and brute force disagree", w.label);
        }
    }
}

#[test]
fn shrink_all_symmetric_pairs_is_consistent_with_pairwise_shrink() {
    let w = &symmetric_workloads(Scale::Quick)[0];
    let all = shrink_all_symmetric_pairs(&w.graph);
    assert!(!all.is_empty());
    for ((u, v), s) in all {
        assert_eq!(shrink(&w.graph, u, v), Some(s));
    }
}

#[test]
fn classify_all_pairs_matches_individual_classification() {
    for w in nonsymmetric_workloads(Scale::Quick).iter().take(3) {
        let g = &w.graph;
        let n = g.num_nodes();
        let all = classify_all_pairs(g, 1);
        assert_eq!(all.len(), n * (n - 1) / 2);
        for ((u, v), class) in all {
            assert_eq!(class, classify(g, u, v, 1), "{} pair ({u},{v})", w.label);
        }
    }
}

#[test]
fn the_oriented_torus_example_from_section_3() {
    // "in an oriented torus, any pair of nodes is symmetric, and Shrink(u, v)
    // is equal to the distance between u and v"
    let g = anonrv_graph::generators::oriented_torus(4, 4).unwrap();
    let partition = OrbitPartition::compute(&g);
    assert!(partition.is_fully_symmetric());
    for u in g.nodes() {
        for v in g.nodes() {
            if u != v {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)));
            }
        }
    }
}

#[test]
fn the_double_tree_example_from_section_3() {
    // "in a symmetric tree composed of a central edge with port-preserving
    // isomorphic trees attached to both of its ends, Shrink(u, v) for any
    // symmetric pair is always 1"
    let (g, mirror) = anonrv_graph::generators::symmetric_double_tree(2, 3).unwrap();
    let partition = OrbitPartition::compute(&g);
    for (v, &m) in mirror.iter().enumerate().take(g.num_nodes() / 2) {
        assert!(partition.are_symmetric(v, m));
        assert_eq!(shrink(&g, v, m), Some(1));
        // distance grows with the depth of v, so Shrink really shrinks
        assert!(distance(&g, v, m) >= 1);
    }
}
