//! Trees and the "symmetric double" construction of Section 3.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::graph::{NodeId, PortGraph};
use crate::Result;

/// Complete `arity`-ary rooted tree of the given `depth ≥ 1` (a depth-1 tree
/// is a star).  The root is node `0` and has degree `arity`; every internal
/// node uses port `0` towards its parent and ports `1..=arity` towards its
/// children; every child is entered through its port `0`.
pub fn kary_tree(arity: usize, depth: usize) -> Result<PortGraph> {
    if arity < 2 {
        return Err(GraphError::invalid("kary_tree requires arity >= 2"));
    }
    if depth < 1 {
        return Err(GraphError::invalid("kary_tree requires depth >= 1"));
    }
    // number of nodes: 1 + arity + arity^2*?  Children per internal node:
    // the root has `arity` children; every other internal node has `arity` children too.
    let mut total = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.checked_mul(arity).ok_or_else(|| GraphError::invalid("tree too large"))?;
        total = total.checked_add(level).ok_or_else(|| GraphError::invalid("tree too large"))?;
    }
    let mut b = PortGraphBuilder::new(total);
    // breadth-first ids: parent of node v (v >= 1) is (v - 1) / arity
    for v in 1..total {
        let parent = (v - 1) / arity;
        let child_index = (v - 1) % arity; // 0..arity
        let parent_port = if parent == 0 { child_index } else { child_index + 1 };
        b.add_edge(parent, parent_port, v, 0)?;
    }
    b.build()
}

/// The paper's second Section 3 example: a *symmetric tree* composed of a
/// central edge with port-preserving isomorphic `arity`-ary trees of the
/// given `depth` attached to both of its ends.
///
/// Returns the graph together with the mirror map `mirror[v]` sending every
/// node to its image under the port-preserving involution that swaps the two
/// halves.  Every pair `(v, mirror[v])` is symmetric and
/// `Shrink(v, mirror[v]) = 1` (walk to the roots of the central edge), even
/// though the distance between deep mirror pairs grows with the depth.
pub fn symmetric_double_tree(arity: usize, depth: usize) -> Result<(PortGraph, Vec<NodeId>)> {
    let half = kary_tree(arity, depth)?;
    symmetric_double_graph(&half, 0)
}

/// General "symmetric double" construction: take two port-preserving copies
/// of `half` and join `anchor` to its copy by a new edge carrying port
/// `deg(anchor)` at both extremities.  Returns the doubled graph and the
/// mirror map.  Every pair `(v, mirror[v])` is symmetric in the result.
pub fn symmetric_double_graph(
    half: &PortGraph,
    anchor: NodeId,
) -> Result<(PortGraph, Vec<NodeId>)> {
    let s = half.num_nodes();
    if anchor >= s {
        return Err(GraphError::NodeOutOfRange { node: anchor, n: s });
    }
    let mut b = PortGraphBuilder::new(2 * s);
    for (u, pu, v, pv) in half.edges() {
        b.add_edge(u, pu, v, pv)?;
        b.add_edge(u + s, pu, v + s, pv)?;
    }
    let port = half.degree(anchor);
    b.add_edge(anchor, port, anchor + s, port)?;
    let mirror = (0..2 * s).map(|v| if v < s { v + s } else { v - s }).collect();
    Ok((b.build()?, mirror))
}

/// Caterpillar tree: a spine path of `spine ≥ 2` nodes, each carrying
/// `legs ≥ 0` pendant leaves.  With `legs ≥ 1` the node degrees vary along
/// the spine, giving a convenient family of almost entirely nonsymmetric
/// trees for the `AsymmRV` workloads.
pub fn caterpillar(spine: usize, legs: usize) -> Result<PortGraph> {
    if spine < 2 {
        return Err(GraphError::invalid("caterpillar requires spine >= 2"));
    }
    let n = spine + spine * legs;
    let mut b = PortGraphBuilder::new(n);
    for i in 0..spine - 1 {
        b.add_edge_auto(i, i + 1)?;
    }
    let mut next = spine;
    for i in 0..spine {
        for _ in 0..legs {
            b.add_edge_auto(i, next)?;
            next += 1;
        }
    }
    if legs == 0 && spine < 2 {
        return Err(GraphError::invalid("caterpillar with no legs needs spine >= 2"));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::shrink::shrink;
    use crate::symmetry::OrbitPartition;

    #[test]
    fn kary_tree_node_count_and_degrees() {
        let g = kary_tree(2, 3).unwrap();
        assert_eq!(g.num_nodes(), 1 + 2 + 4 + 8);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(14), 1);
        assert!(kary_tree(1, 3).is_err());
        assert!(kary_tree(2, 0).is_err());
    }

    #[test]
    fn kary_tree_is_a_tree() {
        let g = kary_tree(3, 2).unwrap();
        assert_eq!(g.num_edges(), g.num_nodes() - 1);
    }

    #[test]
    fn double_tree_mirror_pairs_are_symmetric_with_shrink_one() {
        let (g, mirror) = symmetric_double_tree(2, 2).unwrap();
        let p = OrbitPartition::compute(&g);
        for v in g.nodes() {
            assert!(p.are_symmetric(v, mirror[v]));
            assert_eq!(mirror[mirror[v]], v);
            assert_eq!(shrink(&g, v, mirror[v]), Some(1));
        }
    }

    #[test]
    fn double_tree_distance_grows_with_depth_but_shrink_stays_one() {
        let (g, mirror) = symmetric_double_tree(2, 4).unwrap();
        // a deepest leaf of the first copy
        let leaf = (0..g.num_nodes() / 2).max_by_key(|&v| distance(&g, 0, v)).unwrap();
        assert_eq!(distance(&g, leaf, mirror[leaf]), 2 * 4 + 1);
        assert_eq!(shrink(&g, leaf, mirror[leaf]), Some(1));
    }

    #[test]
    fn symmetric_double_graph_works_for_arbitrary_halves() {
        let half = crate::generators::lollipop(3, 2).unwrap();
        let (g, mirror) = symmetric_double_graph(&half, 4).unwrap();
        assert_eq!(g.num_nodes(), 2 * half.num_nodes());
        let p = OrbitPartition::compute(&g);
        for v in g.nodes() {
            assert!(p.are_symmetric(v, mirror[v]));
        }
        assert!(symmetric_double_graph(&half, 99).is_err());
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 2).unwrap();
        assert_eq!(g.num_nodes(), 4 + 8);
        assert_eq!(g.num_edges(), 3 + 8);
        // spine ends have degree 1 + legs, interior 2 + legs
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 4);
        assert!(caterpillar(1, 2).is_err());
    }

    #[test]
    fn caterpillar_without_legs_is_a_path() {
        let g = caterpillar(5, 0).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
    }
}
