//! Two software agents consulting a replicated database in a toroidal
//! overlay network (the paper's second motivation).  The overlay is an
//! oriented torus: every node looks exactly the same, so the only way to
//! break symmetry is the difference between the agents' injection times.
//!
//! ```sh
//! cargo run --example software_agents_torus
//! ```

use anonrv_core::bounds::symm_rv_bound;
use anonrv_core::prelude::*;
use anonrv_graph::generators::oriented_torus;
use anonrv_graph::shrink::shrink;
use anonrv_sim::{simulate, Stic};
use anonrv_uxs::UxsProvider;

fn main() {
    let overlay = oriented_torus(3, 4).expect("overlay generation");
    let n = overlay.num_nodes();
    let (agent_a, agent_b) = (0usize, 5usize);
    let d = shrink(&overlay, agent_a, agent_b).expect("shrink computation");
    println!("overlay: 3x4 oriented torus ({n} nodes)");
    println!("injection nodes {agent_a} and {agent_b}: symmetric, Shrink = {d}");

    // With a delay below Shrink the task is impossible (Lemma 3.1) ...
    let too_small = d as u128 - 1;
    println!(
        "injection delay {too_small}: {}",
        match classify(&overlay, agent_a, agent_b, too_small) {
            SticClass::SymmetricInfeasible { shrink } =>
                format!("infeasible — delay < Shrink = {shrink} (Lemma 3.1)"),
            other => format!("unexpected classification {other:?}"),
        }
    );

    // ... but as soon as the delay reaches Shrink, the dedicated procedure
    // SymmRV(n, d, delta) meets within the Lemma 3.3 bound.
    let uxs = PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 });
    for delta in [d as u128, d as u128 + 2] {
        let stic = Stic::new(agent_a, agent_b, delta);
        let program = SymmRv::new(n, d, delta, &uxs);
        let bound = symm_rv_bound(n, d, delta, uxs.length(n));
        let outcome = simulate(&overlay, &program, &stic, bound + delta + 1);
        match outcome.meeting {
            Some(m) => println!(
                "injection delay {delta}: agents meet at node {} after {} rounds (bound {bound})",
                m.node, m.later_round
            ),
            None => println!("injection delay {delta}: no meeting within the bound"),
        }
    }
}
