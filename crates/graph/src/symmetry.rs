//! View-equivalence ("symmetric nodes") via port-respecting colour refinement.
//!
//! Two nodes of a port-labelled graph have equal views iff they receive the
//! same colour in the coarsest partition that is *equitable with respect to
//! ports*: starting from the degree partition, nodes are repeatedly split
//! according to the vector, indexed by port, of (entry port, colour) of their
//! neighbours, until a fixpoint is reached.  This is the classical
//! Yamashita–Kameda / Boldi–Vigna characterisation; the fixpoint is reached
//! after at most `n - 1` rounds, matching Norris' view-truncation bound.
//!
//! The refinement runs in `O(n · Δ · log n · rounds)` time and is the
//! workhorse used by the feasibility characterisation (Corollary 3.1) and by
//! every experiment that needs to enumerate symmetric pairs.  Each round
//! renumbers colours by **sorting** node signatures laid out in one flat
//! reused buffer — no hashing and no per-node allocations, which makes the
//! constant factor small enough that the partition is recomputed freely by
//! the sweeps.

use crate::graph::{NodeId, PortGraph};

/// The partition of the node set into view-equivalence classes (orbits of the
/// view map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrbitPartition {
    class_of: Vec<usize>,
    num_classes: usize,
    /// Number of refinement rounds needed to reach the fixpoint.
    rounds: usize,
}

impl OrbitPartition {
    /// Compute the partition for `g`.
    pub fn compute(g: &PortGraph) -> Self {
        let n = g.num_nodes();
        if n == 0 {
            return OrbitPartition { class_of: Vec::new(), num_classes: 0, rounds: 1 };
        }

        // Signature layout: one flat buffer holding, per node, the slice
        // `[colour(v), q₀, colour(w₀), q₁, colour(w₁), ...]` over its ports
        // (entry port and colour of each neighbour).  `sig_offset[v]` is
        // fixed across rounds because degrees never change, so the buffer,
        // the node order and the next-colour vector are all reused.
        let mut sig_offset = Vec::with_capacity(n + 1);
        sig_offset.push(0usize);
        for v in 0..n {
            sig_offset.push(sig_offset[v] + 1 + 2 * g.degree(v));
        }
        let mut sig = vec![0usize; sig_offset[n]];
        let mut order: Vec<NodeId> = (0..n).collect();
        let mut next_colour = vec![0usize; n];

        // Initial colours: degrees, renumbered to 0..k in sorted order (any
        // canonical renumbering works — classes matter, not ids).
        order.sort_unstable_by_key(|&v| g.degree(v));
        let mut colour = vec![0usize; n];
        let mut num_classes = 0usize;
        let mut prev_degree = usize::MAX;
        for &v in &order {
            let d = g.degree(v);
            if d != prev_degree {
                if prev_degree != usize::MAX {
                    num_classes += 1;
                }
                prev_degree = d;
            }
            colour[v] = num_classes;
        }
        num_classes += 1;
        let mut rounds = 0usize;

        loop {
            // Fill the signatures for the current colouring.
            for v in 0..n {
                let base = sig_offset[v];
                sig[base] = colour[v];
                for (p, slot) in (0..g.degree(v)).zip((base + 1..).step_by(2)) {
                    let (w, q) = g.succ(v, p);
                    sig[slot] = q;
                    sig[slot + 1] = colour[w];
                }
            }
            // Sort nodes by signature slice and renumber by runs of equals.
            order.sort_unstable_by(|&a, &b| {
                sig[sig_offset[a]..sig_offset[a + 1]].cmp(&sig[sig_offset[b]..sig_offset[b + 1]])
            });
            let mut new_num = 0usize;
            let mut prev: Option<NodeId> = None;
            for &v in &order {
                if let Some(p) = prev {
                    if sig[sig_offset[p]..sig_offset[p + 1]]
                        != sig[sig_offset[v]..sig_offset[v + 1]]
                    {
                        new_num += 1;
                    }
                }
                next_colour[v] = new_num;
                prev = Some(v);
            }
            new_num += 1;
            rounds += 1;
            let stable = new_num == num_classes;
            std::mem::swap(&mut colour, &mut next_colour);
            num_classes = new_num;
            if stable {
                break;
            }
        }

        OrbitPartition { class_of: colour, num_classes, rounds }
    }

    /// Number of view-equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of refinement rounds used to reach the fixpoint.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Class identifier of node `v` (in `0..num_classes`).
    pub fn class_of(&self, v: NodeId) -> usize {
        self.class_of[v]
    }

    /// `true` iff `u` and `v` are symmetric (equal views).
    pub fn are_symmetric(&self, u: NodeId, v: NodeId) -> bool {
        self.class_of[u] == self.class_of[v]
    }

    /// Number of nodes in the partition (the graph size).
    pub fn num_nodes(&self) -> usize {
        self.class_of.len()
    }

    /// The classes as explicit node lists, ordered by class identifier.
    ///
    /// Allocates one `Vec` per class; hot sweep paths should prefer
    /// [`OrbitPartition::class_sizes`] / [`OrbitPartition::nodes_by_class`],
    /// which stay flat.
    pub fn classes(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_classes];
        for (v, &c) in self.class_of.iter().enumerate() {
            out[c].push(v);
        }
        out
    }

    /// Number of nodes in each class, indexed by class identifier.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_classes];
        for &c in &self.class_of {
            sizes[c] += 1;
        }
        sizes
    }

    /// All nodes grouped by class in one flat buffer: nodes of class `c` are
    /// `nodes[offsets[c]..offsets[c + 1]]`, in increasing node order.  Two
    /// allocations total (a counting sort), versus the per-class `Vec`s of
    /// [`OrbitPartition::classes`].
    pub fn nodes_by_class(&self) -> (Vec<usize>, Vec<NodeId>) {
        let sizes = self.class_sizes();
        let mut offsets = Vec::with_capacity(self.num_classes + 1);
        offsets.push(0usize);
        for &s in &sizes {
            offsets.push(offsets.last().copied().unwrap_or(0) + s);
        }
        let mut cursor = offsets[..self.num_classes].to_vec();
        let mut nodes = vec![0 as NodeId; self.class_of.len()];
        for (v, &c) in self.class_of.iter().enumerate() {
            nodes[cursor[c]] = v;
            cursor[c] += 1;
        }
        (offsets, nodes)
    }

    /// All unordered symmetric pairs `u < v`, grouped by class, in one
    /// counting-sorted pass (no intermediate `Vec<Vec<NodeId>>`).
    pub fn symmetric_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let (offsets, nodes) = self.nodes_by_class();
        let total: usize = (0..self.num_classes)
            .map(|c| {
                let s = offsets[c + 1] - offsets[c];
                s * (s - 1) / 2
            })
            .sum();
        let mut pairs = Vec::with_capacity(total);
        for c in 0..self.num_classes {
            let class = &nodes[offsets[c]..offsets[c + 1]];
            for i in 0..class.len() {
                for j in i + 1..class.len() {
                    pairs.push((class[i], class[j]));
                }
            }
        }
        pairs
    }

    /// A representative (smallest node id) of each class.
    pub fn representatives(&self) -> Vec<NodeId> {
        let mut reps = vec![usize::MAX; self.num_classes];
        for (v, &c) in self.class_of.iter().enumerate() {
            if reps[c] == usize::MAX {
                reps[c] = v;
            }
        }
        reps
    }

    /// `true` iff every node is alone in its class (no symmetric pair exists).
    pub fn is_asymmetric(&self) -> bool {
        self.num_classes == self.class_of.len()
    }

    /// `true` iff all nodes share one class (every pair is symmetric), as in
    /// oriented rings, oriented tori, hypercubes and the paper's `Q̂_h`.
    pub fn is_fully_symmetric(&self) -> bool {
        self.num_classes == 1
    }
}

/// Convenience wrapper: `true` iff `u` and `v` are symmetric in `g`.
pub fn are_symmetric(g: &PortGraph, u: NodeId, v: NodeId) -> bool {
    OrbitPartition::compute(g).are_symmetric(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        complete, hypercube, lollipop, oriented_ring, oriented_torus, path, star,
        symmetric_double_tree,
    };
    use crate::view::symmetric_by_views;

    #[test]
    fn oriented_ring_is_fully_symmetric() {
        let g = oriented_ring(9).unwrap();
        let p = OrbitPartition::compute(&g);
        assert!(p.is_fully_symmetric());
        assert_eq!(p.symmetric_pairs().len(), 9 * 8 / 2);
    }

    #[test]
    fn oriented_torus_is_fully_symmetric() {
        let g = oriented_torus(3, 4).unwrap();
        let p = OrbitPartition::compute(&g);
        assert!(p.is_fully_symmetric());
    }

    #[test]
    fn hypercube_is_fully_symmetric() {
        let g = hypercube(4).unwrap();
        assert!(OrbitPartition::compute(&g).is_fully_symmetric());
    }

    #[test]
    fn complete_graph_with_canonical_ports_is_not_necessarily_symmetric() {
        // with the generator's port assignment (ports by increasing neighbour id)
        // the nodes of K_n are pairwise distinguishable for n >= 3
        let g = complete(4).unwrap();
        let p = OrbitPartition::compute(&g);
        assert!(p.num_classes() > 1);
    }

    #[test]
    fn star_center_differs_from_leaves() {
        let g = star(5).unwrap();
        let p = OrbitPartition::compute(&g);
        assert!(!p.are_symmetric(0, 1));
        // leaves attach to distinct center ports, hence are pairwise nonsymmetric
        assert!(p.is_asymmetric() || p.num_classes() >= 5);
    }

    #[test]
    fn lollipop_is_asymmetric() {
        let g = lollipop(4, 3).unwrap();
        let p = OrbitPartition::compute(&g);
        assert!(p.is_asymmetric());
    }

    #[test]
    fn double_tree_mirror_nodes_are_symmetric() {
        let (g, mirror) = symmetric_double_tree(2, 3).unwrap();
        let p = OrbitPartition::compute(&g);
        for v in g.nodes() {
            assert!(p.are_symmetric(v, mirror[v]), "{v} vs its mirror");
        }
    }

    #[test]
    fn refinement_agrees_with_view_comparison_on_small_graphs() {
        for g in [
            oriented_ring(5).unwrap(),
            path(5).unwrap(),
            star(4).unwrap(),
            complete(4).unwrap(),
            lollipop(3, 2).unwrap(),
        ] {
            let p = OrbitPartition::compute(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        p.are_symmetric(u, v),
                        symmetric_by_views(&g, u, v),
                        "disagreement on ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn representatives_and_classes_are_consistent() {
        let g = star(6).unwrap();
        let p = OrbitPartition::compute(&g);
        let reps = p.representatives();
        assert_eq!(reps.len(), p.num_classes());
        for (c, class) in p.classes().iter().enumerate() {
            assert!(!class.is_empty());
            assert_eq!(reps[c], class[0]);
            for &v in class {
                assert_eq!(p.class_of(v), c);
            }
        }
        let total: usize = p.classes().iter().map(|c| c.len()).sum();
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn flat_class_accessors_agree_with_the_vec_of_vecs() {
        for g in [star(6).unwrap(), oriented_ring(8).unwrap(), lollipop(4, 2).unwrap()] {
            let p = OrbitPartition::compute(&g);
            let classes = p.classes();
            assert_eq!(p.class_sizes(), classes.iter().map(Vec::len).collect::<Vec<_>>());
            let (offsets, nodes) = p.nodes_by_class();
            assert_eq!(offsets.len(), p.num_classes() + 1);
            assert_eq!(*offsets.last().unwrap(), g.num_nodes());
            for (c, class) in classes.iter().enumerate() {
                assert_eq!(&nodes[offsets[c]..offsets[c + 1]], class.as_slice());
            }
            // symmetric_pairs keeps its class-grouped, id-ordered layout
            let mut expected = Vec::new();
            for class in &classes {
                for i in 0..class.len() {
                    for j in i + 1..class.len() {
                        expected.push((class[i], class[j]));
                    }
                }
            }
            assert_eq!(p.symmetric_pairs(), expected);
        }
    }

    #[test]
    fn rounds_is_bounded_by_n() {
        let g = path(9).unwrap();
        let p = OrbitPartition::compute(&g);
        assert!(p.rounds() <= g.num_nodes());
    }
}
