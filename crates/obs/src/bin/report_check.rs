//! `report_check` — validate `anonrv` machine-readable artifacts.
//!
//! ```text
//! report_check <report.json | -> [--trace FILE] [--print-fingerprint]
//! ```
//!
//! Reads one `anonrv.report/v1` JSON report from the given file (or stdin
//! when the path is `-`), validates it, optionally validates an
//! `anonrv.trace/v1` JSONL trace alongside it, and exits non-zero with a
//! diagnostic on stderr if anything is malformed.  `--print-fingerprint`
//! echoes the report's outcome-table fingerprint on stdout so CI can diff
//! observed and plain runs.

use std::io::Read;
use std::process::ExitCode;

use anonrv_obs::{json, report};

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut report_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut print_fingerprint = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace_path = Some(args.next().ok_or("--trace requires a file argument")?);
            }
            "--print-fingerprint" => print_fingerprint = true,
            "--help" | "-h" => {
                println!(
                    "usage: report_check <report.json | -> [--trace FILE] [--print-fingerprint]"
                );
                return Ok(());
            }
            other if report_path.is_none() => report_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let report_path = report_path.ok_or("usage: report_check <report.json | -> [--trace FILE]")?;
    let content = if report_path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&report_path).map_err(|e| format!("{report_path}: {e}"))?
    };
    let value = json::parse(&content).map_err(|e| format!("{report_path}: {e}"))?;
    let summary = report::validate_report(&value)?;
    eprintln!(
        "report ok: command={} mode={} supervisor_rows={}",
        summary.command,
        summary.mode.as_deref().unwrap_or("-"),
        summary.supervisor_rows,
    );
    if let Some(trace_path) = trace_path {
        let trace =
            std::fs::read_to_string(&trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
        let ts = report::validate_trace(&trace)?;
        eprintln!("trace ok: {} span(s), {} event(s)", ts.spans, ts.events);
    }
    if print_fingerprint {
        let fp = summary
            .table_fingerprint
            .ok_or("--print-fingerprint: report has no table_fingerprint")?;
        println!("{fp}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report_check: {e}");
            ExitCode::FAILURE
        }
    }
}
