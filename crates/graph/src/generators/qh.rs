//! The Section 4 lower-bound graphs: the tree `Q_h` and the 4-regular graph
//! `Q̂_h` obtained from it by wiring the leaves together (Figure 1), plus the
//! node set `Z` used in Theorem 4.1.
//!
//! Conventions (matching the paper's cardinal-direction notation):
//!
//! * ports are `N = 0`, `E = 1`, `S = 2`, `W = 3`;
//! * every edge has either ports `N–S` or ports `E–W` at its extremities;
//! * in `Q_h` all leaves are at distance `h` from the root and every non-leaf
//!   node has degree 4; leaves are classified by the single (cardinal) port
//!   of their tree edge;
//! * `Q̂_h` (requires `h ≥ 2`) adds the pairing edges `N_i–S_i`, `E_i–W_i`
//!   and the four alternating leaf cycles described in Section 4, making the
//!   graph 4-regular with all views equal (every pair of nodes symmetric).

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::graph::{NodeId, PortGraph};
use crate::Result;

/// The four cardinal port labels of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cardinal {
    /// North, port 0.
    N = 0,
    /// East, port 1.
    E = 1,
    /// South, port 2.
    S = 2,
    /// West, port 3.
    W = 3,
}

impl Cardinal {
    /// All four cardinals in port order.
    pub const ALL: [Cardinal; 4] = [Cardinal::N, Cardinal::E, Cardinal::S, Cardinal::W];

    /// The opposite direction (`N↔S`, `E↔W`); every edge of `Q_h`/`Q̂_h`
    /// carries a cardinal and its opposite at its two extremities.
    pub fn opposite(self) -> Cardinal {
        match self {
            Cardinal::N => Cardinal::S,
            Cardinal::S => Cardinal::N,
            Cardinal::E => Cardinal::W,
            Cardinal::W => Cardinal::E,
        }
    }

    /// The port number of this cardinal.
    pub fn port(self) -> usize {
        self as usize
    }

    /// Cardinal from a port number (`0..4`).
    pub fn from_port(p: usize) -> Option<Cardinal> {
        match p {
            0 => Some(Cardinal::N),
            1 => Some(Cardinal::E),
            2 => Some(Cardinal::S),
            3 => Some(Cardinal::W),
            _ => None,
        }
    }

    /// Single-letter name.
    pub fn letter(self) -> char {
        match self {
            Cardinal::N => 'N',
            Cardinal::E => 'E',
            Cardinal::S => 'S',
            Cardinal::W => 'W',
        }
    }
}

/// A generated `Q_h` or `Q̂_h` together with its structural metadata.
#[derive(Debug, Clone)]
pub struct QhGraph {
    /// The port graph itself.
    pub graph: PortGraph,
    /// The root `r` of the underlying tree.
    pub root: NodeId,
    /// Tree height `h`.
    pub h: usize,
    /// Depth of every node in the underlying tree.
    pub depth: Vec<usize>,
    /// For every leaf of the tree, its type (the cardinal of its single tree
    /// port); `None` for non-leaf nodes.
    pub leaf_type: Vec<Option<Cardinal>>,
    /// The leaves of each type, in construction order: index by
    /// `Cardinal as usize`.  (`leaves[t][i]` is the paper's `T_{i+1}` for
    /// type `T`.)
    pub leaves: [Vec<NodeId>; 4],
    /// `true` iff the leaf edges of `Q̂_h` were added.
    pub is_hat: bool,
}

impl QhGraph {
    /// Number of leaves of the underlying tree (`4 · 3^(h-1)`).
    pub fn num_leaves(&self) -> usize {
        self.leaves.iter().map(|l| l.len()).sum()
    }

    /// The paper's `x = 3^(h-1)`, the number of leaves of each type.
    pub fn x(&self) -> usize {
        self.leaves[0].len()
    }
}

/// Number of nodes of `Q_h`: `1 + 4·(3^h − 1)/2`.
fn qh_num_nodes(h: usize) -> Result<usize> {
    let mut total: usize = 1;
    let mut level: usize = 1;
    for d in 0..h {
        level = level
            .checked_mul(if d == 0 { 4 } else { 3 })
            .ok_or_else(|| GraphError::invalid("Q_h too large"))?;
        total = total.checked_add(level).ok_or_else(|| GraphError::invalid("Q_h too large"))?;
    }
    Ok(total)
}

struct TreeSkeleton {
    builder: PortGraphBuilder,
    depth: Vec<usize>,
    leaf_type: Vec<Option<Cardinal>>,
    leaves: [Vec<NodeId>; 4],
}

/// Build the tree part shared by `Q_h` and `Q̂_h`.  In the plain tree the
/// leaves have degree 1, so their single cardinal port cannot be a literal
/// port number (ports must be `0..deg`); the caller decides whether to remap
/// it to port 0 (`qh_tree`) or to complete the degree-4 wiring (`qh_hat`).
fn build_skeleton(h: usize, leaf_port_is_cardinal: bool) -> Result<TreeSkeleton> {
    if h < 1 {
        return Err(GraphError::invalid("Q_h requires h >= 1"));
    }
    let n = qh_num_nodes(h)?;
    if n > 4_000_000 {
        return Err(GraphError::invalid(format!(
            "Q_h with h={h} would have {n} nodes; refusing to allocate (limit 4,000,000)"
        )));
    }
    let mut builder = PortGraphBuilder::new(n);
    let mut depth = vec![0usize; n];
    let mut leaf_type: Vec<Option<Cardinal>> = vec![None; n];
    let mut leaves: [Vec<NodeId>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];

    // BFS construction: (node, depth, entry cardinal from parent) — the entry
    // cardinal is the port of the tree edge at this node.
    let mut next_id: NodeId = 1;
    let mut frontier: Vec<(NodeId, Cardinal)> = Vec::new();

    // root: children in all four directions
    for c in Cardinal::ALL {
        let child = next_id;
        next_id += 1;
        depth[child] = 1;
        let child_port = c.opposite();
        if h == 1 {
            // children are leaves
            leaf_type[child] = Some(child_port);
            leaves[child_port.port()].push(child);
            let leaf_port = if leaf_port_is_cardinal { child_port.port() } else { 0 };
            builder.add_edge(0, c.port(), child, leaf_port)?;
        } else {
            builder.add_edge(0, c.port(), child, child_port.port())?;
            frontier.push((child, child_port));
        }
    }

    for d in 2..=h {
        let mut next_frontier = Vec::with_capacity(frontier.len() * 3);
        for (node, entry) in frontier.drain(..) {
            for c in Cardinal::ALL {
                if c == entry {
                    continue; // that port already points to the parent
                }
                let child = next_id;
                next_id += 1;
                depth[child] = d;
                let child_port = c.opposite();
                if d == h {
                    leaf_type[child] = Some(child_port);
                    leaves[child_port.port()].push(child);
                    let leaf_port = if leaf_port_is_cardinal { child_port.port() } else { 0 };
                    builder.add_edge(node, c.port(), child, leaf_port)?;
                } else {
                    builder.add_edge(node, c.port(), child, child_port.port())?;
                    next_frontier.push((child, child_port));
                }
            }
        }
        frontier = next_frontier;
    }
    debug_assert_eq!(next_id, n);

    Ok(TreeSkeleton { builder, depth, leaf_type, leaves })
}

/// The plain tree `Q_h` (Figure 1, left, for `h = 2`).
///
/// Because leaves have degree 1, their single port is stored as port `0` in
/// the returned [`PortGraph`]; the *cardinal type* of every leaf is recorded
/// in [`QhGraph::leaf_type`], matching the paper's classification of leaves
/// into `N`/`S`/`E`/`W` types.
pub fn qh_tree(h: usize) -> Result<QhGraph> {
    let skel = build_skeleton(h, false)?;
    let graph = skel.builder.build()?;
    Ok(QhGraph {
        graph,
        root: 0,
        h,
        depth: skel.depth,
        leaf_type: skel.leaf_type,
        leaves: skel.leaves,
        is_hat: false,
    })
}

/// The 4-regular graph `Q̂_h` (`h ≥ 2`): `Q_h` plus the pairing edges
/// `N_i–S_i` / `E_i–W_i` and the four alternating leaf cycles of Section 4.
/// All nodes of `Q̂_h` have identical views.
pub fn qh_hat(h: usize) -> Result<QhGraph> {
    if h < 2 {
        return Err(GraphError::invalid(
            "Q̂_h requires h >= 2 (with h = 1 the leaf cycles degenerate)",
        ));
    }
    let mut skel = build_skeleton(h, true)?;
    let x = skel.leaves[0].len();
    debug_assert!(x % 2 == 1, "x = 3^(h-1) is odd");
    let n_leaves = &skel.leaves[Cardinal::N.port()];
    let e_leaves = &skel.leaves[Cardinal::E.port()];
    let s_leaves = &skel.leaves[Cardinal::S.port()];
    let w_leaves = &skel.leaves[Cardinal::W.port()];

    // Pairing edges: N_i — S_i (port S at N_i, N at S_i); E_i — W_i (port W at E_i, E at W_i).
    for i in 0..x {
        skel.builder.add_edge(n_leaves[i], Cardinal::S.port(), s_leaves[i], Cardinal::N.port())?;
        skel.builder.add_edge(e_leaves[i], Cardinal::W.port(), w_leaves[i], Cardinal::E.port())?;
    }

    // The four alternating cycles.  In each cycle, consecutive vertices are
    // joined with the "low index" endpoint getting the first port of the pair
    // and the "high index" endpoint the second; the wrap-around edge uses the
    // same pair on (last, first).
    let alternating = |primary: &[NodeId], secondary: &[NodeId]| -> Vec<NodeId> {
        (0..x).map(|j| if j % 2 == 0 { primary[j] } else { secondary[j] }).collect()
    };
    let cycles: [(Vec<NodeId>, Cardinal, Cardinal); 4] = [
        // N1 - S2 - N3 - ... - Nx - N1, ports E (low) / W (high)
        (alternating(n_leaves, s_leaves), Cardinal::E, Cardinal::W),
        // S1 - N2 - S3 - ... - Sx - S1, ports E / W
        (alternating(s_leaves, n_leaves), Cardinal::E, Cardinal::W),
        // E1 - W2 - E3 - ... - Ex - E1, ports N / S
        (alternating(e_leaves, w_leaves), Cardinal::N, Cardinal::S),
        // W1 - E2 - W3 - ... - Wx - W1, ports N / S
        (alternating(w_leaves, e_leaves), Cardinal::N, Cardinal::S),
    ];
    for (cycle, low_port, high_port) in cycles {
        for j in 0..x {
            let a = cycle[j];
            let b = cycle[(j + 1) % x];
            skel.builder.add_edge(a, low_port.port(), b, high_port.port())?;
        }
    }

    let graph = skel.builder.build()?;
    Ok(QhGraph {
        graph,
        root: 0,
        h,
        depth: skel.depth,
        leaf_type: skel.leaf_type,
        leaves: skel.leaves,
        is_hat: true,
    })
}

/// The node set `Z` of Theorem 4.1: all nodes `v = (γ‖γ)(r)` where `γ` ranges
/// over the `2^k` sequences in `{N, E}^k`.  Every such node is at distance
/// `D = 2k` from the root and `|Z| = 2^k`.
///
/// Requires `2k ≤ h` so that the doubled sequence stays inside the tree.
pub fn z_set(q: &QhGraph, k: usize) -> Result<Vec<NodeId>> {
    if 2 * k > q.h {
        return Err(GraphError::invalid(format!("z_set requires 2k <= h (k={k}, h={})", q.h)));
    }
    if k >= usize::BITS as usize {
        return Err(GraphError::invalid("k too large"));
    }
    let mut out = Vec::with_capacity(1usize << k);
    for mask in 0u64..(1u64 << k) {
        // bit i of mask: 0 => N, 1 => E, giving gamma; the walk follows gamma twice
        let gamma: Vec<usize> = (0..k)
            .map(|i| if mask >> i & 1 == 0 { Cardinal::N.port() } else { Cardinal::E.port() })
            .collect();
        let mut cur = q.root;
        for _ in 0..2 {
            for &p in &gamma {
                cur = q.graph.succ(cur, p).0;
            }
        }
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::symmetry::OrbitPartition;

    #[test]
    fn qh_tree_counts_match_the_paper() {
        for h in 1..=4 {
            let q = qh_tree(h).unwrap();
            let expected_leaves = 4 * 3usize.pow((h - 1) as u32);
            assert_eq!(q.num_leaves(), expected_leaves, "h={h}");
            assert_eq!(q.x(), 3usize.pow((h - 1) as u32));
            // every type has exactly x leaves
            for t in 0..4 {
                assert_eq!(q.leaves[t].len(), q.x(), "h={h}, type {t}");
            }
            // tree edge count
            assert_eq!(q.graph.num_edges(), q.graph.num_nodes() - 1);
        }
    }

    #[test]
    fn qh_tree_leaves_are_at_depth_h_and_internal_nodes_have_degree_4() {
        let q = qh_tree(3).unwrap();
        for v in q.graph.nodes() {
            if q.leaf_type[v].is_some() {
                assert_eq!(q.depth[v], 3);
                assert_eq!(q.graph.degree(v), 1);
                assert_eq!(distance(&q.graph, q.root, v), 3);
            } else {
                assert_eq!(q.graph.degree(v), 4);
            }
        }
    }

    #[test]
    fn qh_hat_is_4_regular_with_nsew_port_pairing() {
        let q = qh_hat(2).unwrap();
        assert_eq!(q.graph.num_nodes(), 17);
        assert!(q.graph.is_regular());
        assert_eq!(q.graph.max_degree(), 4);
        // every edge pairs N with S or E with W
        for (_, pu, _, pv) in q.graph.edges() {
            let cu = Cardinal::from_port(pu).unwrap();
            let cv = Cardinal::from_port(pv).unwrap();
            assert_eq!(cu.opposite(), cv, "edge ports {pu}/{pv}");
        }
    }

    #[test]
    fn qh_hat_has_all_views_equal() {
        // the key structural property claimed in Section 4
        for h in 2..=3 {
            let q = qh_hat(h).unwrap();
            let p = OrbitPartition::compute(&q.graph);
            assert!(p.is_fully_symmetric(), "Q̂_{h} must have all views equal");
        }
    }

    #[test]
    fn qh_hat_rejects_h_one() {
        assert!(qh_hat(1).is_err());
    }

    #[test]
    fn z_set_size_and_distance() {
        let k = 1usize;
        let q = qh_hat(4 * k).unwrap(); // h = 2D = 4k
        let z = z_set(&q, k).unwrap();
        assert_eq!(z.len(), 2usize.pow(k as u32));
        for &v in &z {
            assert_eq!(distance(&q.graph, q.root, v), 2 * k);
            assert_eq!(q.depth[v], 2 * k);
        }
        // all distinct
        let mut sorted = z.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), z.len());
    }

    #[test]
    fn z_set_requires_enough_height() {
        let q = qh_hat(2).unwrap();
        assert!(z_set(&q, 2).is_err());
        assert!(z_set(&q, 1).is_ok());
    }

    #[test]
    fn cardinal_helpers() {
        assert_eq!(Cardinal::N.opposite(), Cardinal::S);
        assert_eq!(Cardinal::W.opposite(), Cardinal::E);
        assert_eq!(Cardinal::from_port(1), Some(Cardinal::E));
        assert_eq!(Cardinal::from_port(4), None);
        assert_eq!(Cardinal::S.letter(), 'S');
        for c in Cardinal::ALL {
            assert_eq!(Cardinal::from_port(c.port()), Some(c));
            assert_eq!(c.opposite().opposite(), c);
        }
    }

    #[test]
    fn qh_size_limit_is_enforced() {
        assert!(qh_tree(20).is_err());
    }
}
