//! Emit `BENCH_sweep.json`: wall-clock timings and the speedup of the batch
//! (trajectory-memoized) simulation engine on the symm-sweep workload —
//! **all** `(u, v)` ordered pairs × δ ∈ {0..4} on `oriented_torus(16, 16)`
//! (327 680 STICs, horizon 256) — versus per-call lockstep simulation.
//! Both sides run the full workload single-threaded, so the recorded ratio
//! is pure engine work (the experiment sweeps add rayon on top of the batch
//! engine).
//!
//! Usage: `cargo run --release -p anonrv-bench --bin sweep_timing
//! [output.json]` (default output: `BENCH_sweep.json`).

use std::time::Instant;

use anonrv_bench::{sweep_batch_engine, sweep_per_call_lockstep, sweep_stics, SweepWalker};
use anonrv_graph::generators::oriented_torus;
use anonrv_sim::Round;

const HORIZON: Round = 256;
const DELTAS: u32 = 5;

/// Median wall time of `runs` executions, in seconds.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let torus = oriented_torus(16, 16).unwrap();
    let n = torus.num_nodes();
    let program = SweepWalker { seed: 0x5EED };
    let stics = sweep_stics(n, DELTAS);

    // correctness guard: both paths must agree before anything is timed
    let met_batch = sweep_batch_engine(&torus, &program, DELTAS, HORIZON);
    let met_lockstep = sweep_per_call_lockstep(&torus, &program, &stics, HORIZON);
    assert_eq!(met_batch, met_lockstep, "engines disagree on the sweep workload");

    let batch_s = time_median(5, || sweep_batch_engine(&torus, &program, DELTAS, HORIZON));
    let lockstep_s = time_median(3, || sweep_per_call_lockstep(&torus, &program, &stics, HORIZON));
    let speedup = lockstep_s / batch_s;

    let num_stics = stics.len();
    let json = format!(
        "{{\n  \"instance\": \"oriented_torus(16, 16)\",\n  \
         \"workload\": \"all (u, v) pairs x delta in 0..{DELTAS}, horizon {HORIZON}\",\n  \
         \"stics\": {num_stics},\n  \
         \"meetings\": {met_batch},\n  \
         \"batch_sweep_seconds\": {batch_s:.6},\n  \
         \"per_call_lockstep_seconds\": {lockstep_s:.6},\n  \
         \"batch_speedup\": {speedup:.1}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
