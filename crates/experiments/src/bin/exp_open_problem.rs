//! EXP-OPEN: the polynomial asymmetric-only universal algorithm versus the
//! full UniversalRV (the Section 4 discussion / open problem).  Pass `--full`
//! for the EXPERIMENTS.md configuration.

use anonrv_experiments::open_problem;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        open_problem::OpenProblemConfig::full()
    } else {
        open_problem::OpenProblemConfig::default()
    };
    println!("{}", open_problem::run(&config));
}
