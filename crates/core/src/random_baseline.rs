//! The randomized baseline the paper's conclusion points to: "the synchronous
//! randomized counterpart of our problem is straightforward, and follows from
//! the fact that two random walks meet with high probability in time
//! polynomial in the size of the graph" (citing Mitzenmacher–Upfal).
//!
//! Randomization breaks symmetry without any delay: two independent random
//! walks are almost surely not mirror images of each other, so they meet even
//! from symmetric positions with delay `0` — the exact configuration that is
//! *infeasible* for deterministic anonymous agents (Lemma 3.1).  The
//! experiment EXP-RAND measures this contrast and the polynomial growth of
//! the expected meeting time.
//!
//! Modelling note: the agents are still anonymous and identical as programs,
//! but each has access to its own source of random bits.  In the simulator
//! that is expressed by instantiating the program twice with different seeds
//! and running them through [`anonrv_sim::simulate_with`]; a deterministic
//! fixed-seed walk (both agents share the seed) degenerates to the
//! symmetric-trajectory situation of Lemma 3.1 and is also provided, as the
//! negative control of the experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use anonrv_sim::{AgentProgram, Navigator, Round, Stop};

/// A lazy random walk: in every round, with probability 1/2 stay put,
/// otherwise move through a uniformly random port of the current node.
///
/// The laziness is the standard device that avoids parity traps (e.g. two
/// walks on a bipartite graph that always switch sides simultaneously).
pub struct RandomWalkRv {
    /// Seed of this agent's private randomness.
    pub seed: u64,
    /// Stop after this many rounds (`None` = walk until the engine stops the
    /// agent); simulations always bound the horizon anyway.
    pub max_rounds: Option<Round>,
}

impl RandomWalkRv {
    /// A walk with the given private seed.
    pub fn new(seed: u64) -> Self {
        RandomWalkRv { seed, max_rounds: None }
    }
}

impl AgentProgram for RandomWalkRv {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rounds: Round = 0;
        loop {
            if let Some(cap) = self.max_rounds {
                if rounds >= cap {
                    return Ok(());
                }
            }
            if rng.gen_bool(0.5) {
                nav.wait(1)?;
            } else {
                let degree = nav.degree();
                nav.move_via(rng.gen_range(0..degree))?;
            }
            rounds += 1;
        }
    }

    fn name(&self) -> &str {
        "random-walk"
    }
}

/// Expected-time estimate for the randomized baseline on one STIC: the mean
/// rendezvous time over `trials` independent seed pairs, together with the
/// number of trials that failed to meet within the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomBaselineEstimate {
    /// Number of trials run.
    pub trials: u32,
    /// Trials that met within the horizon.
    pub met: u32,
    /// Mean rendezvous time over the successful trials (rounds after the
    /// later agent's start).
    pub mean_time: Option<Round>,
    /// Worst successful rendezvous time.
    pub max_time: Option<Round>,
}

/// Run the randomized baseline `trials` times on the STIC with independent
/// seed pairs derived from `base_seed`.
pub fn estimate_random_rendezvous(
    g: &anonrv_graph::PortGraph,
    stic: &anonrv_sim::Stic,
    horizon: Round,
    trials: u32,
    base_seed: u64,
) -> RandomBaselineEstimate {
    let mut met = 0u32;
    let mut total: u128 = 0;
    let mut max_time: Option<Round> = None;
    for trial in 0..trials {
        let earlier =
            RandomWalkRv::new(base_seed ^ (2 * trial as u64 + 1).wrapping_mul(0x9E37_79B9));
        let later =
            RandomWalkRv::new(base_seed ^ (2 * trial as u64 + 2).wrapping_mul(0x51_7C_C1_B7));
        let outcome = anonrv_sim::simulate_with(
            g,
            &earlier,
            &later,
            stic,
            anonrv_sim::EngineConfig::with_horizon(horizon),
        );
        if let Some(t) = outcome.rendezvous_time() {
            met += 1;
            total += t;
            max_time = Some(max_time.map_or(t, |m: Round| m.max(t)));
        }
    }
    RandomBaselineEstimate {
        trials,
        met,
        mean_time: if met > 0 { Some(total / met as u128) } else { None },
        max_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{oriented_ring, oriented_torus};
    use anonrv_sim::{simulate, simulate_with, EngineConfig, Stic};

    #[test]
    fn independent_random_walks_meet_even_on_the_infeasible_configuration() {
        // symmetric positions with delay 0: infeasible deterministically
        // (Lemma 3.1), easy with private randomness
        let g = oriented_ring(8).unwrap();
        let stic = Stic::new(0, 4, 0);
        let estimate = estimate_random_rendezvous(&g, &stic, 100_000, 10, 42);
        assert_eq!(estimate.met, estimate.trials, "{estimate:?}");
        assert!(estimate.mean_time.unwrap() > 0);
    }

    #[test]
    fn shared_seed_walks_never_meet_from_symmetric_positions_with_zero_delay() {
        // the negative control: if both agents use the SAME seed the walk is a
        // common deterministic port sequence, and Lemma 3.1 applies again
        let g = oriented_torus(3, 3).unwrap();
        let program = RandomWalkRv::new(7);
        let outcome = simulate(&g, &program, &Stic::simultaneous(0, 4), 50_000);
        assert!(!outcome.met());
    }

    #[test]
    fn the_estimate_counts_failures_against_a_tiny_horizon() {
        let g = oriented_ring(8).unwrap();
        let estimate = estimate_random_rendezvous(&g, &Stic::new(0, 4, 0), 1, 5, 1);
        assert!(estimate.met < estimate.trials);
    }

    #[test]
    fn capped_walks_terminate_on_their_own() {
        let g = oriented_ring(5).unwrap();
        let earlier = RandomWalkRv { seed: 1, max_rounds: Some(10) };
        let later = RandomWalkRv { seed: 2, max_rounds: Some(10) };
        let outcome = simulate_with(
            &g,
            &earlier,
            &later,
            &Stic::new(0, 2, 0),
            EngineConfig::with_horizon(1_000),
        );
        // regardless of whether they met, both programs terminated by themselves
        assert!(outcome.met() || (outcome.earlier_terminated && outcome.later_terminated));
    }
}
