//! Procedure `SymmRV(n, d, δ)` (Algorithm 1 of the paper).
//!
//! The agent follows the application `R(u)` of the UXS `Y(n)` from its start
//! node, executing `Explore(u_i, d, δ)` at each of the `M + 2` visited nodes,
//! and finally backtracks to its start node along the traversed path.
//!
//! Lemma 3.2: two agents starting from symmetric nodes `u, v` with delay
//! `δ ≥ Shrink(u, v) = d` in a graph of size `n` meet during this procedure.
//! Lemma 3.3: it takes at most
//! `T(n, d, δ) = (d + δ)(n − 1)^d (M + 2) + 2(M + 1)` rounds.

use anonrv_sim::{AgentProgram, Navigator, Round, Stop};
use anonrv_uxs::UxsProvider;

use crate::bounds::walk_count_bound;
use crate::explore::explore;

/// `SymmRV(n, d, δ)` as an agent program.
pub struct SymmRv<'a> {
    /// Assumed size of the graph.
    pub n: usize,
    /// Assumed value of `Shrink(u, v)`.
    pub d: usize,
    /// Assumed delay (must satisfy `δ ≥ d`).
    pub delta: Round,
    /// Source of the UXS `Y(n)` shared by both agents.
    pub uxs: &'a dyn UxsProvider,
    /// When `true`, each `Explore` call is padded to the worst-case
    /// `(n − 1)^d` iterations so the procedure's duration is exactly
    /// `T(n, d, δ)` on any graph.  `UniversalRV` enables this to keep the two
    /// agents' phases aligned even when a phase underestimates the graph.
    pub pad_explore: bool,
}

impl<'a> SymmRv<'a> {
    /// Construct the procedure with the paper's literal (unpadded) behaviour.
    pub fn new(n: usize, d: usize, delta: Round, uxs: &'a dyn UxsProvider) -> Self {
        SymmRv { n, d, delta, uxs, pad_explore: false }
    }

    /// Construct the padded variant used inside `UniversalRV`.
    pub fn padded(n: usize, d: usize, delta: Round, uxs: &'a dyn UxsProvider) -> Self {
        SymmRv { n, d, delta, uxs, pad_explore: true }
    }

    fn pad_target(&self) -> Option<u128> {
        if self.pad_explore {
            Some(walk_count_bound(self.n, self.d))
        } else {
            None
        }
    }

    /// Execute the procedure body through a navigator (shared with
    /// `UniversalRV`, which embeds it inside its phases).
    pub fn execute(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        assert!(self.d >= 1, "SymmRV requires d >= 1");
        assert!(self.delta >= self.d as Round, "SymmRV requires δ >= d");
        let y = self.uxs.sequence(self.n);
        let pad = self.pad_target();

        // Explore at u_0 = u
        explore(nav, self.d, self.delta, pad)?;

        // u_1 = succ(u_0, 0)
        let mut entry = nav.move_via(0)?;
        let mut backtrack = Vec::with_capacity(y.len() + 1);
        backtrack.push(entry);
        explore(nav, self.d, self.delta, pad)?;

        // u_{i+1} = succ(u_i, (q + a_i) mod deg(u_i))
        for &a in y.terms() {
            let degree = nav.degree();
            let p = (entry + a) % degree;
            entry = nav.move_via(p)?;
            backtrack.push(entry);
            explore(nav, self.d, self.delta, pad)?;
        }

        // go back to u_0 along the reverse path
        for &q in backtrack.iter().rev() {
            nav.move_via(q)?;
        }
        Ok(())
    }
}

impl AgentProgram for SymmRv<'_> {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        self.execute(nav)
    }

    fn name(&self) -> &str {
        "SymmRV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::symm_rv_bound;
    use anonrv_graph::generators::{oriented_ring, oriented_torus, symmetric_double_tree};
    use anonrv_graph::shrink::shrink;
    use anonrv_graph::PortGraph;
    use anonrv_sim::{record_trace, simulate, Stic};
    use anonrv_uxs::PseudorandomUxs;

    fn provider() -> PseudorandomUxs {
        PseudorandomUxs::default()
    }

    fn meet_time(g: &PortGraph, program: &SymmRv<'_>, stic: Stic, horizon: Round) -> Option<Round> {
        simulate(g, program, &stic, horizon).rendezvous_time()
    }

    #[test]
    fn symm_rv_meets_on_the_oriented_ring_when_delay_equals_shrink() {
        let g = oriented_ring(6).unwrap();
        let uxs = provider();
        let (u, v) = (0usize, 2usize);
        let d = shrink(&g, u, v).unwrap(); // = 2
        let program = SymmRv::new(6, d, d as Round, &uxs);
        let horizon = symm_rv_bound(6, d, d as Round, uxs.length(6)) + 10;
        let t = meet_time(&g, &program, Stic::new(u, v, d as Round), horizon);
        assert!(t.is_some(), "SymmRV must meet on a feasible symmetric STIC");
    }

    #[test]
    fn symm_rv_meets_on_the_oriented_torus() {
        let g = oriented_torus(3, 3).unwrap();
        let uxs = provider();
        let (u, v) = (0usize, 4usize); // distance 2
        let d = shrink(&g, u, v).unwrap();
        assert_eq!(d, 2);
        for delta in [d as Round, d as Round + 3] {
            let program = SymmRv::new(9, d, delta, &uxs);
            let horizon = symm_rv_bound(9, d, delta, uxs.length(9)) + 10;
            let t = meet_time(&g, &program, Stic::new(u, v, delta), horizon);
            assert!(t.is_some(), "delta = {delta}");
        }
    }

    #[test]
    fn symm_rv_meets_on_the_symmetric_double_tree_with_delay_one() {
        // the paper's flagship example: Shrink = 1 although the distance is large
        let (g, mirror) = symmetric_double_tree(2, 2).unwrap();
        let uxs = provider();
        let n = g.num_nodes();
        let leaf = (0..n / 2).find(|&v| g.degree(v) == 1).unwrap();
        let stic = Stic::new(leaf, mirror[leaf], 1);
        assert_eq!(shrink(&g, leaf, mirror[leaf]), Some(1));
        let program = SymmRv::new(n, 1, 1, &uxs);
        let horizon = symm_rv_bound(n, 1, 1, uxs.length(n)) + 10;
        let t = meet_time(&g, &program, stic, horizon);
        assert!(t.is_some());
    }

    #[test]
    fn measured_duration_respects_lemma_3_3() {
        let g = oriented_ring(5).unwrap();
        let uxs = provider();
        let (n, d, delta) = (5usize, 2usize, 3 as Round);
        let program = SymmRv::new(n, d, delta, &uxs);
        let (trace, stats) = record_trace(&g, &program, 0, Round::MAX, 1 << 22);
        assert!(trace.terminated);
        let bound = symm_rv_bound(n, d, delta, uxs.length(n));
        assert!(stats.rounds <= bound, "duration {} exceeds T(n,d,δ) = {}", stats.rounds, bound);
        // the procedure ends where it started
        assert_eq!(trace.final_position(), 0);
    }

    #[test]
    fn padded_variant_has_exactly_the_lemma_3_3_duration() {
        let g = oriented_ring(5).unwrap();
        let uxs = provider();
        let (n, d, delta) = (5usize, 1usize, 2 as Round);
        let program = SymmRv::padded(n, d, delta, &uxs);
        let (trace, stats) = record_trace(&g, &program, 3, Round::MAX, 1 << 22);
        assert!(trace.terminated);
        assert_eq!(stats.rounds, symm_rv_bound(n, d, delta, uxs.length(n)) + 1);
        assert_eq!(trace.final_position(), 3);
    }

    #[test]
    fn padded_duration_is_identical_across_start_nodes() {
        // the key property UniversalRV relies on
        let (g, _) = symmetric_double_tree(2, 2).unwrap();
        let uxs = provider();
        let program = SymmRv::padded(4, 1, 2, &uxs); // deliberately wrong n
        let (_, s0) = record_trace(&g, &program, 0, Round::MAX, 1 << 22);
        let (_, s1) = record_trace(&g, &program, 5, Round::MAX, 1 << 22);
        assert_eq!(s0.rounds, s1.rounds);
    }

    #[test]
    #[should_panic(expected = "requires δ >= d")]
    fn delta_smaller_than_d_is_rejected() {
        let g = oriented_ring(5).unwrap();
        let uxs = provider();
        let program = SymmRv::new(5, 3, 1, &uxs);
        let _ = record_trace(&g, &program, 0, 100, 100);
    }
}
