//! Space-time initial configurations (STICs).

use anonrv_graph::NodeId;

/// Rounds are counted in `u128`: the paper's worst-case padding bound
/// `T(n, d, δ) = (d + δ)(n − 1)^d (M + 2) + 2(M + 1)` exceeds `u64` for
/// moderate `n` and `d`.
pub type Round = u128;

/// A space-time initial configuration `[(u, v), δ]` (Section 1): the agents'
/// initial nodes together with the difference between their starting rounds.
///
/// The adversary additionally chooses *which* of the two agents starts first;
/// a `Stic` fixes that choice (`earlier` starts at global round 0, `later` at
/// global round `delay`).  Experiments that want the adversarial worst case
/// simply evaluate both orientations (see [`Stic::swapped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stic {
    /// Initial node of the agent that starts first.
    pub earlier: NodeId,
    /// Initial node of the agent that starts `delay` rounds later.
    pub later: NodeId,
    /// The delay `δ ≥ 0` between the two starting rounds.
    pub delay: Round,
}

impl Stic {
    /// Construct a STIC.
    pub fn new(earlier: NodeId, later: NodeId, delay: Round) -> Self {
        Stic { earlier, later, delay }
    }

    /// A simultaneous-start STIC (`δ = 0`).
    pub fn simultaneous(u: NodeId, v: NodeId) -> Self {
        Stic { earlier: u, later: v, delay: 0 }
    }

    /// The STIC with the roles of the two agents exchanged (same pair of
    /// nodes and delay, but the other agent starts first).
    pub fn swapped(&self) -> Self {
        Stic { earlier: self.later, later: self.earlier, delay: self.delay }
    }

    /// The unordered pair of initial nodes.
    pub fn nodes(&self) -> (NodeId, NodeId) {
        (self.earlier, self.later)
    }
}

impl std::fmt::Display for Stic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[({}, {}), {}]", self.earlier, self.later, self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Stic::new(3, 7, 5);
        assert_eq!(s.nodes(), (3, 7));
        assert_eq!(s.delay, 5);
        let sw = s.swapped();
        assert_eq!(sw.earlier, 7);
        assert_eq!(sw.later, 3);
        assert_eq!(sw.delay, 5);
        assert_eq!(sw.swapped(), s);
        let sim = Stic::simultaneous(1, 2);
        assert_eq!(sim.delay, 0);
    }

    #[test]
    fn display_matches_the_paper_notation() {
        assert_eq!(Stic::new(0, 4, 2).to_string(), "[(0, 4), 2]");
    }
}
