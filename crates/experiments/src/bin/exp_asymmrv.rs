//! EXP-P31: the AsymmRV substitute on nonsymmetric STICs (Proposition 3.1).
//! Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::asymm;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full { asymm::AsymmConfig::full() } else { asymm::AsymmConfig::default() };
    println!("{}", asymm::run(&config));
}
