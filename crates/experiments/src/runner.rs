//! Parallel sweep execution.
//!
//! Experiments evaluate many independent STIC simulations; this module runs
//! them with rayon (data parallelism stays strictly in the experiment layer —
//! the algorithms themselves are sequential round-by-round programs, as in
//! the paper) and collects uniform [`RunRecord`]s.
//!
//! Three per-graph preparations turn sweeps from `O(cases · full-work)` into
//! `O(graph)` + cheap per-case queries:
//!
//! * classification goes through a [`FeasibilityOracle`] (one `O(n²·Δ)`
//!   pair-space preparation answering every STIC of that graph in O(1)) via
//!   [`run_case_with_oracle`];
//! * simulation goes through a [`SweepEngine`] (one trajectory recording
//!   per start node answering every STIC by merging two cached timelines)
//!   via [`run_case_with_engine`] — the sweeps group their cases by
//!   `(graph, program, horizon)`, build one engine per group, and fan rayon
//!   over the cached-timeline merges;
//! * on top of both, **planning and persistence** collapse view-equivalent
//!   cases before any simulation runs: [`run_cases_planned`] routes a case
//!   batch through a [`SweepSession`] — the single orchestrator of
//!   `anonrv-store` — which canonicalises onto one representative per
//!   `(pair orbit, δ, horizon)` group, preloads trajectory timelines from a
//!   persistent store when the session has one (longer recordings serve by
//!   prefix truncation), broadcasts the (bit-identical) outcome to every
//!   member case, and persists what it recorded.  The session's
//!   [`anonrv_store::SessionStats`] feed the report compression notes via
//!   [`crate::report::PlanCompression::absorb`].
//!
//! The oracle-less, engine-less [`run_case`] stays as a convenience for
//! one-off cases.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use anonrv_core::feasibility::{FeasibilityOracle, SticClass};
use anonrv_graph::{NodeId, PortGraph};
use anonrv_sim::{simulate, AgentProgram, Round, Stic, SweepEngine};
use anonrv_store::SweepSession;

/// One simulated STIC and its outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Workload family (e.g. `"oriented-torus"`).
    pub family: String,
    /// Instance label (e.g. `"torus-3x4"`).
    pub label: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of nodes of the instance.
    pub n: usize,
    /// Earlier agent's start node.
    pub u: NodeId,
    /// Later agent's start node.
    pub v: NodeId,
    /// Delay between the starting rounds.
    pub delta: Round,
    /// STIC classification (Corollary 3.1).
    pub class: String,
    /// `Shrink(u, v)` when the pair is symmetric.
    pub shrink: Option<usize>,
    /// Whether the agents met within the horizon.
    pub met: bool,
    /// Rendezvous time (rounds after the later agent's start).
    pub time: Option<Round>,
    /// The bound the experiment compares against (e.g. `T(n, d, δ)`).
    pub bound: Option<Round>,
    /// Simulation horizon used.
    pub horizon: Round,
}

impl RunRecord {
    /// `true` when a bound is recorded and the measured time does not exceed
    /// it.
    pub fn within_bound(&self) -> bool {
        match (self.time, self.bound) {
            (Some(t), Some(b)) => t <= b,
            _ => false,
        }
    }
}

/// A STIC case to run: everything [`run_case`] needs besides the algorithm.
#[derive(Debug, Clone)]
pub struct Case<'g> {
    /// Workload family.
    pub family: String,
    /// Instance label.
    pub label: String,
    /// The graph.
    pub graph: &'g PortGraph,
    /// The STIC.
    pub stic: Stic,
    /// Simulation horizon.
    pub horizon: Round,
    /// Bound to record alongside the measurement.
    pub bound: Option<Round>,
}

/// Simulate one case with the given program (both agents run it), building a
/// throwaway [`FeasibilityOracle`] for the classification.  Sweeps with many
/// cases per graph should build the oracle once and use
/// [`run_case_with_oracle`].
pub fn run_case(case: &Case<'_>, program: &dyn AgentProgram) -> RunRecord {
    run_case_with_oracle(case, program, &FeasibilityOracle::new(case.graph))
}

/// Simulate one case, classifying through a prebuilt per-graph oracle.
pub fn run_case_with_oracle(
    case: &Case<'_>,
    program: &dyn AgentProgram,
    oracle: &FeasibilityOracle,
) -> RunRecord {
    let outcome = simulate(case.graph, program, &case.stic, case.horizon);
    record_outcome(case, program.name(), oracle, outcome)
}

/// Simulate one case through a prebuilt per-`(graph, program)`
/// [`SweepEngine`] (its trajectory cache answers the STIC by merging two
/// cached timelines) and classify through the per-graph oracle.  The
/// engine's cache horizon must be at least `case.horizon`; cases with
/// heterogeneous horizons share one engine built at the maximum.
pub fn run_case_with_engine(
    case: &Case<'_>,
    engine: &SweepEngine<'_>,
    oracle: &FeasibilityOracle,
) -> RunRecord {
    let outcome = engine.simulate_capped(&case.stic, case.horizon);
    record_outcome(case, engine.program().name(), oracle, outcome)
}

/// Run a batch of cases through a [`SweepSession`]: one representative
/// simulation per `(pair orbit, δ, horizon)` group, broadcast to every
/// member case (outcomes are bit-identical to simulating each case; see
/// `anonrv_plan`), with store-backed sessions preloading and persisting
/// trajectory timelines around the batch.  Classification stays per-case
/// through the O(1) oracle.  Returns the records in case order; read the
/// session's [`SweepSession::stats`] afterwards for the compression notes.
pub fn run_cases_planned(
    cases: &[Case<'_>],
    session: &mut SweepSession<'_>,
    oracle: &FeasibilityOracle,
) -> Vec<RunRecord> {
    let _span = anonrv_obs::span("experiment.cases");
    anonrv_obs::counter_add("experiment.cases", cases.len() as u64);
    let queries: Vec<(Stic, Round)> = cases.iter().map(|c| (c.stic, c.horizon)).collect();
    let outcomes = session.simulate_cases(&queries);
    let algorithm = session.planned().program().name().to_string();
    cases
        .iter()
        .zip(outcomes)
        .map(|(case, outcome)| record_outcome(case, &algorithm, oracle, outcome))
        .collect()
}

fn record_outcome(
    case: &Case<'_>,
    algorithm: &str,
    oracle: &FeasibilityOracle,
    outcome: anonrv_sim::SimOutcome,
) -> RunRecord {
    let class = oracle.classify(case.stic.earlier, case.stic.later, case.stic.delay);
    RunRecord {
        family: case.family.clone(),
        label: case.label.clone(),
        algorithm: algorithm.to_string(),
        n: case.graph.num_nodes(),
        u: case.stic.earlier,
        v: case.stic.later,
        delta: case.stic.delay,
        class: class_name(&class).to_string(),
        shrink: match class {
            SticClass::SymmetricFeasible { shrink } | SticClass::SymmetricInfeasible { shrink } => {
                Some(shrink)
            }
            _ => None,
        },
        met: outcome.met(),
        time: outcome.rendezvous_time(),
        bound: case.bound,
        horizon: case.horizon,
    }
}

/// Short name of a STIC class for reports.
pub fn class_name(class: &SticClass) -> &'static str {
    match class {
        SticClass::Nonsymmetric => "nonsymmetric",
        SticClass::SymmetricFeasible { .. } => "symmetric-feasible",
        SticClass::SymmetricInfeasible { .. } => "symmetric-infeasible",
        SticClass::SameNode => "same-node",
    }
}

/// Distinct values of `items` in first-seen order (the sweeps use this to
/// derive their one-engine-per-group keys deterministically).
pub fn distinct_in_order<T: PartialEq>(items: impl IntoIterator<Item = T>) -> Vec<T> {
    let mut distinct = Vec::new();
    for item in items {
        if !distinct.contains(&item) {
            distinct.push(item);
        }
    }
    distinct
}

/// Map `f` over `items` in parallel, preserving order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.par_iter().map(f).collect()
}

/// Run a slice of cases against per-case programs built by `make_program`, in
/// parallel.  The program factory receives the case so that parameters (such
/// as the assumed size `n`) can depend on the instance.
///
/// One [`FeasibilityOracle`] is prepared per *distinct graph* in the batch
/// (compared by address) and shared by every case on it, so classification
/// costs `O(n²·Δ)` once per graph instead of once per case.
pub fn par_run_cases<'g, F, P>(cases: Vec<Case<'g>>, make_program: F) -> Vec<RunRecord>
where
    F: Fn(&Case<'g>) -> P + Sync,
    P: AgentProgram,
{
    let mut graphs: Vec<&PortGraph> = Vec::new();
    for case in &cases {
        if !graphs.iter().any(|g| std::ptr::eq(*g, case.graph)) {
            graphs.push(case.graph);
        }
    }
    let oracles: Vec<FeasibilityOracle> =
        graphs.iter().map(|g| FeasibilityOracle::new(g)).collect();
    cases
        .par_iter()
        .map(|case| {
            let which = graphs
                .iter()
                .position(|g| std::ptr::eq(*g, case.graph))
                .expect("every case graph was indexed above");
            let program = make_program(case);
            run_case_with_oracle(case, &program, &oracles[which])
        })
        .collect()
}

/// Aggregate statistics over a set of records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Aggregate {
    /// Total number of records.
    pub total: usize,
    /// Number of records with `met == true`.
    pub met: usize,
    /// Number of records where a bound was recorded and respected.
    pub within_bound: usize,
    /// Maximum rendezvous time observed.
    pub max_time: Option<Round>,
    /// Minimum rendezvous time observed.
    pub min_time: Option<Round>,
}

impl Aggregate {
    /// Compute aggregates for a record slice.
    pub fn of(records: &[RunRecord]) -> Self {
        let mut agg = Aggregate { total: records.len(), ..Default::default() };
        for r in records {
            if r.met {
                agg.met += 1;
            }
            if r.within_bound() {
                agg.within_bound += 1;
            }
            if let Some(t) = r.time {
                agg.max_time = Some(agg.max_time.map_or(t, |m: Round| m.max(t)));
                agg.min_time = Some(agg.min_time.map_or(t, |m: Round| m.min(t)));
            }
        }
        agg
    }

    /// `true` iff every record met.
    pub fn all_met(&self) -> bool {
        self.met == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{lollipop, oriented_ring};
    use anonrv_sim::{Navigator, Stop};

    /// Trivial program: keep moving through port 0.
    struct AlwaysPortZero;
    impl AgentProgram for AlwaysPortZero {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            loop {
                nav.move_via(0)?;
            }
        }
        fn name(&self) -> &str {
            "always-port-zero"
        }
    }

    #[test]
    fn run_case_records_classification_and_outcome() {
        let g = oriented_ring(4).unwrap();
        let case = Case {
            family: "oriented-ring".into(),
            label: "ring-4".into(),
            graph: &g,
            stic: Stic::new(0, 1, 1),
            horizon: 50,
            bound: Some(50),
        };
        let record = run_case(&case, &AlwaysPortZero);
        assert_eq!(record.class, "symmetric-feasible");
        assert_eq!(record.shrink, Some(1));
        // with delay 1 and "always move clockwise" the later agent is caught
        assert!(record.met);
        assert!(record.within_bound());
        assert_eq!(record.algorithm, "always-port-zero");
    }

    #[test]
    fn par_run_cases_preserves_order_and_uses_the_factory() {
        let ring = oriented_ring(6).unwrap();
        let lp = lollipop(3, 2).unwrap();
        let cases = vec![
            Case {
                family: "oriented-ring".into(),
                label: "ring-6".into(),
                graph: &ring,
                stic: Stic::new(0, 3, 3),
                horizon: 100,
                bound: None,
            },
            Case {
                family: "lollipop".into(),
                label: "lollipop-3-2".into(),
                graph: &lp,
                stic: Stic::new(0, 4, 0),
                horizon: 100,
                bound: None,
            },
        ];
        let records = par_run_cases(cases, |_case| AlwaysPortZero);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "ring-6");
        assert_eq!(records[1].label, "lollipop-3-2");
    }

    #[test]
    fn planned_batch_matches_per_case_engine_records() {
        use anonrv_sim::EngineConfig;
        let g = oriented_ring(6).unwrap();
        let program = AlwaysPortZero;
        let oracle = FeasibilityOracle::new(&g);
        let cases: Vec<Case<'_>> = (0..6)
            .flat_map(|v| {
                [(v, 0u128), (v, 2)].map(|(v, delta)| Case {
                    family: "oriented-ring".into(),
                    label: "ring-6".into(),
                    graph: &g,
                    stic: Stic::new(0, v, delta),
                    horizon: 80,
                    bound: Some(80),
                })
            })
            .collect();
        let mut session = SweepSession::in_memory(&g, &program, EngineConfig::with_horizon(80));
        let engine = SweepEngine::new(&g, &program, EngineConfig::with_horizon(80));
        let records = run_cases_planned(&cases, &mut session, &oracle);
        assert_eq!(records.len(), cases.len());
        let stats = session.stats();
        assert_eq!(stats.answered, cases.len());
        assert!(stats.executed <= cases.len());
        for (case, record) in cases.iter().zip(&records) {
            let direct = run_case_with_engine(case, &engine, &oracle);
            assert_eq!(*record, direct, "planned record diverged on {}", case.stic);
        }
    }

    #[test]
    fn aggregates_summarise_records() {
        let g = oriented_ring(4).unwrap();
        let mk = |delta: Round| Case {
            family: "oriented-ring".into(),
            label: "ring-4".into(),
            graph: &g,
            stic: Stic::new(0, 2, delta),
            horizon: 40,
            bound: Some(10),
        };
        let records: Vec<RunRecord> =
            vec![run_case(&mk(2), &AlwaysPortZero), run_case(&mk(0), &AlwaysPortZero)];
        let agg = Aggregate::of(&records);
        assert_eq!(agg.total, 2);
        // delay 2 catches up, delay 0 keeps the agents antipodal forever
        assert_eq!(agg.met, 1);
        assert!(!agg.all_met());
        assert!(agg.max_time.is_some());
        assert_eq!(agg.min_time, agg.max_time);
    }

    #[test]
    fn par_map_preserves_order() {
        let doubled = par_map((0..100usize).collect(), |x| x * 2);
        assert_eq!(doubled[7], 14);
        assert_eq!(doubled.len(), 100);
    }
}
