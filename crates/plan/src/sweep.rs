//! Sweep planning and planned execution.
//!
//! [`SweepPlan`] reduces a `(graph, δ-grid, horizon)` workload to one
//! representative STIC per `(pair class, δ)`; [`PlannedSweep`] executes only
//! those representatives through an [`anonrv_sim::SweepEngine`] (rayon over
//! classes) and broadcasts the outcomes back to member pairs through the
//! orbit's witnessing automorphisms, so every member outcome — meeting node
//! included — is **bit-identical** to simulating the member directly.
//!
//! The validate mode ([`PlannedSweep::validate_sample`]) re-runs a sampled
//! fraction of non-representative member queries through the underlying
//! batch engine and checks that bit-identity, which is the executable form
//! of the planner's soundness argument (see the crate docs).

use std::borrow::Cow;

use rayon::prelude::*;

use anonrv_graph::{NodeId, PortGraph};
use anonrv_sim::{
    merge_timelines_deltas_mapped, AgentProgram, EngineConfig, EngineMode, MergeScratch, Round,
    SimOutcome, Stic, SweepEngine, UNROLL_CAP,
};

use crate::orbits::PairOrbits;

/// Pull a canonical-world outcome back into the world of the member pair
/// whose earlier node is `u`: the meeting node is the **only**
/// orbit-variant field of a [`SimOutcome`], and it maps through `π_u⁻¹`.
fn pull_back(orbits: &PairOrbits, u: NodeId, mut outcome: SimOutcome) -> SimOutcome {
    if let Some(m) = outcome.meeting.as_mut() {
        m.node = orbits.from_canonical(u, m.node);
    }
    outcome
}

/// A planned sweep workload: the pair-orbit partition of one graph plus the
/// delay grid and horizon it will be executed under.  Emits one
/// representative query per `(pair class, δ)`; the expansion map back to
/// member pairs is the orbit structure itself
/// ([`PairOrbits::members`] / [`PairOrbits::class_of`]).
///
/// The `(class, δ)` work-list is what the shard executor of `anonrv-store`
/// slices across processes: any partition of the classes yields partial
/// outcome tables that merge back — deterministically and bit-identically —
/// into the table [`PlannedSweep::run`] would have produced in one process
/// (see [`PlannedSweep::run_classes`]).
///
/// ```
/// use anonrv_graph::generators::oriented_torus;
/// use anonrv_plan::SweepPlan;
///
/// // all-pairs x delta in {0, 1, 2} on the 3x4 torus, horizon 64
/// let g = oriented_torus(3, 4).unwrap();
/// let plan = SweepPlan::new(&g, vec![0, 1, 2], 64);
/// // 144 ordered pairs collapse onto 12 translation classes ...
/// assert_eq!(plan.orbits().num_pair_classes(), 12);
/// // ... so the plan answers 432 member queries with 36 representative runs
/// assert_eq!(plan.num_member_queries(), 144 * 3);
/// assert_eq!(plan.num_representative_queries(), 12 * 3);
/// // the work-list enumerates representatives class-major, delta-minor
/// let (class, stic) = plan.representative_queries().next().unwrap();
/// assert_eq!((class, stic.delay), (0, 0));
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    orbits: PairOrbits,
    deltas: Vec<Round>,
    horizon: Round,
}

impl SweepPlan {
    /// Plan an all-pairs sweep of `g` over `deltas` at `horizon`.
    pub fn new(g: &PortGraph, deltas: Vec<Round>, horizon: Round) -> Self {
        Self::from_orbits(PairOrbits::compute(g), deltas, horizon)
    }

    /// Plan from a precomputed pair-orbit partition (sweeps sharing one
    /// graph reuse the partition across programs and delay grids).
    pub fn from_orbits(orbits: PairOrbits, deltas: Vec<Round>, horizon: Round) -> Self {
        SweepPlan { orbits, deltas, horizon }
    }

    /// The pair-orbit partition the plan reduces through.
    pub fn orbits(&self) -> &PairOrbits {
        &self.orbits
    }

    /// The delay grid.
    pub fn deltas(&self) -> &[Round] {
        &self.deltas
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> Round {
        self.horizon
    }

    /// Number of representative queries the plan executes
    /// (`num_pair_classes × |δ-grid|`).
    pub fn num_representative_queries(&self) -> usize {
        self.orbits.num_pair_classes() * self.deltas.len()
    }

    /// Number of member queries the plan answers (`n² × |δ-grid|`).
    pub fn num_member_queries(&self) -> usize {
        let n = self.orbits.num_nodes();
        n * n * self.deltas.len()
    }

    /// The representative STICs, class-major and δ-minor (matching the
    /// layout of [`PlannedOutcomes`]).
    pub fn representative_queries(&self) -> impl Iterator<Item = (usize, Stic)> + '_ {
        (0..self.orbits.num_pair_classes()).flat_map(move |class| {
            let (r, c) = self.orbits.representative(class);
            self.deltas.iter().map(move |&delta| (class, Stic::new(r, c, delta)))
        })
    }
}

/// The outcome table of an executed [`SweepPlan`]: one [`SimOutcome`] per
/// `(pair class, δ)`, expandable to any member pair in O(1).
#[derive(Debug, Clone)]
pub struct PlannedOutcomes<'p> {
    plan: &'p SweepPlan,
    /// `table[class · |deltas| + delta_index]`.
    table: Vec<SimOutcome>,
}

impl<'p> PlannedOutcomes<'p> {
    /// Wrap an externally produced outcome table (a warm persistent cache, or
    /// the deterministic merge of sharded partial results) as the outcome of
    /// `plan`.  The table must be laid out exactly as [`PlannedSweep::run`]
    /// produces it — `table[class · |deltas| + delta_index]` — and the length
    /// is checked; the *contents* are the caller's contract (the store
    /// checksums its payloads and embeds the plan identity in the key).
    pub fn from_table(plan: &'p SweepPlan, table: Vec<SimOutcome>) -> Result<Self, String> {
        let expected = plan.num_representative_queries();
        if table.len() != expected {
            return Err(format!(
                "outcome table has {} entries, the plan expects {expected}",
                table.len()
            ));
        }
        Ok(PlannedOutcomes { plan, table })
    }

    /// The raw representative-outcome table, class-major and δ-minor (what
    /// the persistent store serialises).
    pub fn table(&self) -> &[SimOutcome] {
        &self.table
    }

    /// The plan this table was executed from.
    pub fn plan(&self) -> &SweepPlan {
        self.plan
    }

    /// The representative outcome of a class at delay index `di`.
    pub fn representative_outcome(&self, class: usize, di: usize) -> SimOutcome {
        self.table[class * self.plan.deltas.len() + di]
    }

    /// The outcome of the member STIC `[(u, v), deltas[di]]`, bit-identical
    /// to simulating it directly (the meeting node is pulled back through
    /// `u`'s canonical automorphism).
    pub fn get(&self, u: NodeId, v: NodeId, di: usize) -> SimOutcome {
        let orbits = self.plan.orbits();
        let class = orbits.class_of(u, v);
        pull_back(orbits, u, self.representative_outcome(class, di))
    }

    /// Total number of member STICs that met, over all pairs and delays
    /// (each class counts `class_size` times — `met` is orbit-invariant).
    pub fn met_total(&self) -> usize {
        self.table.iter().filter(|o| o.met()).count() * self.plan.orbits().class_size()
    }

    /// Serve this table at a **smaller** horizon: `plan` must describe the
    /// same orbits and δ-grid with `plan.horizon() <=` this table's horizon,
    /// and the result is bit-identical to executing `plan` cold.
    ///
    /// Programs propagate `Stop`, so a horizon-`h` run is an exact prefix of
    /// this table's longer run.  That determines most entries from the table
    /// alone: a delay beyond `h` is a no-show, and a meeting at global round
    /// `<= h` happened identically in the prefix (every other outcome field
    /// is a function of the run up to the meeting).  The one thing a prefix
    /// *cannot* be read off for is the move/termination totals of a pair
    /// that has **not** met by `h` — those are totals *at* `h`, which only
    /// the trajectories know — so such entries are resolved through
    /// `remerge`, called with the class's representative STIC.  A caller
    /// holding warm cached timelines answers `remerge` with two timeline
    /// merges and zero program executions (see `anonrv-store`).
    pub fn truncate<'q>(
        &self,
        plan: &'q SweepPlan,
        mut remerge: impl FnMut(&Stic) -> SimOutcome,
    ) -> Result<PlannedOutcomes<'q>, String> {
        validate_truncation(self.plan, plan)?;
        let h = plan.horizon();
        let ndeltas = plan.deltas().len();
        let table = self
            .table
            .iter()
            .enumerate()
            .map(|(slot, o)| match prefix_determined(o, plan.deltas()[slot % ndeltas], h) {
                Some(truncated) => truncated,
                None => {
                    let (r, c) = plan.orbits().representative(slot / ndeltas);
                    remerge(&Stic::new(r, c, plan.deltas()[slot % ndeltas]))
                }
            })
            .collect();
        Ok(PlannedOutcomes { plan, table })
    }
}

/// Check that `plan` is a valid truncation target of `full`: the same
/// partition and δ-grid at a horizon the recorded table covers.
fn validate_truncation(full: &SweepPlan, plan: &SweepPlan) -> Result<(), String> {
    if plan.orbits() != full.orbits() {
        return Err("cannot truncate onto a different graph / partition".into());
    }
    if plan.deltas() != full.deltas() {
        return Err("cannot truncate onto a different delay grid".into());
    }
    if plan.horizon() > full.horizon() {
        return Err(format!(
            "cannot extend a horizon-{} table to {}",
            full.horizon(),
            plan.horizon()
        ));
    }
    Ok(())
}

/// Check that `plan` is a valid extension target of `prior`: the same
/// partition and δ-grid at a horizon at least the recorded one.
fn validate_extension(prior: &SweepPlan, plan: &SweepPlan) -> Result<(), String> {
    if plan.orbits() != prior.orbits() {
        return Err("cannot extend onto a different graph / partition".into());
    }
    if plan.deltas() != prior.deltas() {
        return Err("cannot extend onto a different delay grid".into());
    }
    if plan.horizon() < prior.horizon() {
        return Err(format!(
            "cannot extend a horizon-{} table down to {}",
            prior.horizon(),
            plan.horizon()
        ));
    }
    Ok(())
}

/// The horizon-`h` outcome a longer-horizon entry determines by the prefix
/// property alone, or `None` when only the trajectories know (no meeting by
/// `h`: the move/termination totals are totals *at* `h`).
fn prefix_determined(o: &SimOutcome, delta: Round, h: Round) -> Option<SimOutcome> {
    if delta > h {
        // the later agent never appears within the horizon
        return Some(SimOutcome::no_show(h));
    }
    match &o.meeting {
        // the meeting is in the prefix; every other field is a function of
        // the run up to it
        Some(m) if m.global_round <= h => Some(SimOutcome { horizon: h, ..*o }),
        _ => None,
    }
}

/// Execution statistics of a planned query batch: how many representative
/// simulations actually ran for how many answered queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Representative simulations executed.
    pub executed: usize,
    /// Member queries answered.
    pub answered: usize,
}

/// Aggregate statistics of a streamed plan execution
/// ([`PlannedSweep::run_streamed`]) — the summary that survives when the
/// outcome table itself is never materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Pair classes executed (one mapped delta-sweep pass each).
    pub classes: usize,
    /// `(class, δ)` outcome entries produced and streamed.
    pub entries: usize,
    /// Entries whose representative met within the horizon.
    pub met_entries: usize,
    /// Member STICs those entries answer (`entries × class_size`).
    pub answered: usize,
    /// Member STICs that meet (`met_entries × class_size` — every member of
    /// a met class meets, by the orbit soundness argument).
    pub met_total: usize,
}

/// Result of [`PlannedSweep::validate_sample`].
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Member queries re-simulated directly.
    pub checked: usize,
    /// Queries whose direct outcome differed from the broadcast one.
    pub mismatches: usize,
    /// The first mismatch, if any: the STIC plus (planned, direct) outcomes.
    pub first_mismatch: Option<(Stic, SimOutcome, SimOutcome)>,
}

impl ValidationReport {
    /// `true` iff every checked query was bit-identical.
    pub fn is_valid(&self) -> bool {
        self.mismatches == 0
    }
}

/// The planned-execution façade in front of [`SweepEngine`]: canonicalises
/// every query onto its class representative, so the underlying trajectory
/// cache records only representative-world timelines and equivalent queries
/// collapse onto one merge; [`PlannedSweep::run`] executes a whole
/// [`SweepPlan`] with rayon over classes.
pub struct PlannedSweep<'a> {
    engine: SweepEngine<'a>,
    orbits: Cow<'a, PairOrbits>,
}

impl<'a> PlannedSweep<'a> {
    /// Build a planned sweep for `graph` under `program`, computing the
    /// pair-orbit partition.
    pub fn new(graph: &'a PortGraph, program: &'a dyn AgentProgram, config: EngineConfig) -> Self {
        let orbits = PairOrbits::compute(graph);
        assert_eq!(orbits.num_nodes(), graph.num_nodes(), "orbit partition of a different graph");
        PlannedSweep {
            engine: SweepEngine::new(graph, program, config),
            orbits: Cow::Owned(orbits),
        }
    }

    /// Build from an *owned* precomputed partition (must belong to
    /// `graph`) — the constructor used when the partition arrives from
    /// outside the borrow graph, e.g. deserialised from the persistent plan
    /// cache of `anonrv-store`.
    pub fn from_orbits(
        orbits: PairOrbits,
        graph: &'a PortGraph,
        program: &'a dyn AgentProgram,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(orbits.num_nodes(), graph.num_nodes(), "orbit partition of a different graph");
        PlannedSweep {
            engine: SweepEngine::new(graph, program, config),
            orbits: Cow::Owned(orbits),
        }
    }

    /// Build from a precomputed partition (must belong to `graph`); the
    /// partition is borrowed, so sweeps sharing one graph reuse it across
    /// programs and parameter groups without copying.
    pub fn with_orbits(
        orbits: &'a PairOrbits,
        graph: &'a PortGraph,
        program: &'a dyn AgentProgram,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(orbits.num_nodes(), graph.num_nodes(), "orbit partition of a different graph");
        PlannedSweep {
            engine: SweepEngine::new(graph, program, config),
            orbits: Cow::Borrowed(orbits),
        }
    }

    /// The underlying sweep engine.
    pub fn engine(&self) -> &SweepEngine<'a> {
        &self.engine
    }

    /// The pair-orbit partition queries are canonicalised through.
    pub fn orbits(&self) -> &PairOrbits {
        &self.orbits
    }

    /// The program both agents run.
    pub fn program(&self) -> &'a dyn AgentProgram {
        self.engine.program()
    }

    /// The canonical-world image of a STIC: the class representative pair at
    /// the same delay.
    pub fn canonical_stic(&self, stic: &Stic) -> Stic {
        Stic::new(
            self.orbits.node_representative(stic.earlier),
            self.orbits.to_canonical(stic.earlier, stic.later),
            stic.delay,
        )
    }

    /// Pull a canonical-world outcome back into the world of the member pair
    /// whose earlier node is `u`.
    fn pull_back(&self, u: NodeId, outcome: SimOutcome) -> SimOutcome {
        pull_back(&self.orbits, u, outcome)
    }

    /// Simulate one STIC at the configured horizon (canonicalise, run the
    /// representative, pull the outcome back) — bit-identical to
    /// `engine().simulate(stic)`.
    pub fn simulate(&self, stic: &Stic) -> SimOutcome {
        self.simulate_capped(stic, self.engine.config().horizon)
    }

    /// Simulate one STIC at `horizon <= config.horizon`.
    pub fn simulate_capped(&self, stic: &Stic, horizon: Round) -> SimOutcome {
        let canonical = self.canonical_stic(stic);
        self.pull_back(stic.earlier, self.engine.simulate_capped(&canonical, horizon))
    }

    /// Simulate one `(u, v)` pair under every delay in `deltas` (one
    /// canonical delta-sweep pass).
    pub fn simulate_deltas(&self, u: NodeId, v: NodeId, deltas: &[Round]) -> Vec<SimOutcome> {
        let r = self.orbits.node_representative(u);
        let c = self.orbits.to_canonical(u, v);
        self.engine
            .simulate_deltas(r, c, deltas)
            .into_iter()
            .map(|o| self.pull_back(u, o))
            .collect()
    }

    /// Answer a batch of `(stic, horizon)` queries, executing **one**
    /// representative simulation per distinct `(pair class, δ, horizon)`
    /// (rayon over the groups) and broadcasting within each group.
    /// Outcomes are returned in input order, each bit-identical to
    /// `engine().simulate_capped(...)` on the member itself.
    pub fn simulate_many(&self, queries: &[(Stic, Round)]) -> Vec<SimOutcome> {
        self.simulate_many_counted(queries).0
    }

    /// [`PlannedSweep::simulate_many`] plus the execution statistics.
    pub fn simulate_many_counted(&self, queries: &[(Stic, Round)]) -> (Vec<SimOutcome>, ExecStats) {
        let key =
            |q: &(Stic, Round)| (self.orbits.class_of(q.0.earlier, q.0.later), q.0.delay, q.1);
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_unstable_by_key(|&i| key(&queries[i]));
        // contiguous runs of `order` share one representative simulation
        let mut groups: Vec<&[usize]> = Vec::new();
        let mut start = 0;
        for i in 1..=order.len() {
            if i == order.len() || key(&queries[order[i]]) != key(&queries[order[start]]) {
                groups.push(&order[start..i]);
                start = i;
            }
        }
        let per_group: Vec<SimOutcome> = groups
            .par_iter()
            .map(|group| {
                let (stic, horizon) = &queries[group[0]];
                // canonical-world outcome, broadcast below per member
                self.engine.simulate_capped(&self.canonical_stic(stic), *horizon)
            })
            .collect();
        let mut outcomes: Vec<Option<SimOutcome>> = vec![None; queries.len()];
        for (group, canonical) in groups.iter().zip(per_group) {
            for &i in *group {
                outcomes[i] = Some(self.pull_back(queries[i].0.earlier, canonical));
            }
        }
        let outcomes = outcomes.into_iter().map(|o| o.expect("every query is grouped")).collect();
        (outcomes, ExecStats { executed: groups.len(), answered: queries.len() })
    }

    /// Execute a whole plan: run only the representative queries and return
    /// the broadcastable outcome table.  The plan must describe the same
    /// graph (same orbit partition) as this sweep.
    pub fn run<'p>(&self, plan: &'p SweepPlan) -> PlannedOutcomes<'p> {
        let classes: Vec<usize> = (0..self.orbits.num_pair_classes()).collect();
        let table = self.run_classes(plan, &classes);
        PlannedOutcomes { plan, table }
    }

    /// Execute a *slice* of a plan: run the representative queries of the
    /// given classes only and return their outcomes, class-major and
    /// δ-minor (`|classes| × |deltas|` entries, in the order of `classes`).
    ///
    /// This is the shard-execution primitive: partitioning `0..num_classes`
    /// across processes and concatenating the per-class blocks in class
    /// order reproduces [`PlannedSweep::run`]'s table bit-identically,
    /// because every class's outcomes depend only on its own representative
    /// STIC (the merge of two deterministic timelines) and never on which
    /// other classes ran alongside it.
    pub fn run_classes(&self, plan: &SweepPlan, classes: &[usize]) -> Vec<SimOutcome> {
        assert_eq!(
            plan.orbits(),
            self.orbits(),
            "plan was built for a different graph / partition"
        );
        assert!(
            plan.horizon() <= self.engine.config().horizon,
            "plan horizon exceeds the engine horizon"
        );
        if anonrv_obs::enabled() {
            anonrv_obs::counter_add(
                "plan.representatives",
                (classes.len() * plan.deltas().len()) as u64,
            );
        }
        let per_class: Vec<Vec<SimOutcome>> = classes
            .par_iter()
            .map(|&class| {
                let (r, c) = self.orbits.representative(class);
                // one delta-sweep pass per class resolves the whole δ-grid:
                // the occupancy cursors and scratch buffers are shared
                // across the class's delays (see `merge_timelines_deltas`)
                let mut scratch = MergeScratch::new();
                self.engine.simulate_deltas_capped_with(
                    &mut scratch,
                    r,
                    c,
                    plan.deltas(),
                    plan.horizon(),
                )
            })
            .collect();
        per_class.into_iter().flatten().collect()
    }

    /// Execute a whole plan **without ever materialising the outcome
    /// table**: stream class-major, δ-minor outcome chunks to `visit` and
    /// return only aggregate [`StreamStats`].
    ///
    /// This is the million-node path.  It requires an *implicit* orbit
    /// partition ([`PairOrbits::is_implicit`]), whose group is regular: node
    /// 0 represents every node class and class `c` is represented by the
    /// pair `(0, c)`.  Vertex-transitivity then gives `timeline(c) =
    /// φ_c(timeline(0))` — the recorded trajectory from any start `c` is the
    /// node 0 trajectory with every node mapped through the group element
    /// `φ_c` (the agent observes only degree, entry port and clock, all
    /// `φ`-invariant).  So instead of recording `n` timelines the sweep
    /// records **one** and answers class `c` by merging `timeline(0)`
    /// against *itself* with the later agent's nodes read through
    /// `φ_c` ([`merge_timelines_deltas_mapped`]) — bit-identical to the
    /// materialised merge (differentially pinned in `anonrv-sim`), with
    /// `O(|timeline(0)| + chunk · |δ|)` live memory instead of
    /// `O(n · |timeline|)` cache plus an `n · |δ|` table.
    ///
    /// `visit(base, outcomes)` receives each chunk's first class index and
    /// its `(class, δ)` outcomes in the exact slot order of
    /// [`PlannedSweep::run`]; concatenating the chunks reproduces the full
    /// table bit-identically.  `chunk_classes` bounds peak memory
    /// (`chunk_classes × |δ|` outcomes live at once).
    ///
    /// Errors (rather than silently falling back) when the partition is
    /// explicit, when the plan does not match this sweep, or when the
    /// horizon needs the symbolic engine (`> UNROLL_CAP`) — callers decide
    /// the fallback policy.
    pub fn run_streamed<F>(
        &self,
        plan: &SweepPlan,
        chunk_classes: usize,
        mut visit: F,
    ) -> Result<StreamStats, String>
    where
        F: FnMut(usize, &[SimOutcome]),
    {
        if plan.orbits() != self.orbits() {
            return Err("plan was built for a different graph / partition".into());
        }
        if plan.horizon() > self.engine.config().horizon {
            return Err("plan horizon exceeds the engine horizon".into());
        }
        if plan.horizon() > UNROLL_CAP {
            return Err(format!(
                "streamed execution unrolls timelines explicitly; horizon {} exceeds the \
                 unroll cap 2^{} (use the symbolic path)",
                plan.horizon(),
                UNROLL_CAP.trailing_zeros()
            ));
        }
        if !self.orbits.is_implicit() {
            return Err("streamed execution needs an implicit (closed-form, transitive) symmetry \
                 group; this sweep's partition is explicit — use `run` / `run_classes`"
                .into());
        }
        if !matches!(self.engine.config().mode, EngineMode::Auto | EngineMode::Batch) {
            return Err("streamed execution requires the batch engine (mode Auto or Batch)".into());
        }
        let group = self.orbits.group().clone();
        let chunk = chunk_classes.max(1);
        let num_classes = self.orbits.num_pair_classes();
        let ndeltas = plan.deltas().len();
        // the one and only recorded trajectory: every class merges this
        // timeline against its φ_c-mapped self
        let t0 = self.engine.cache().timeline(0);
        let mut stats = StreamStats::default();
        let class_size = self.orbits.class_size();
        let mut buf: Vec<SimOutcome> = Vec::with_capacity(chunk * ndeltas);
        let mut base = 0;
        while base < num_classes {
            let hi = (base + chunk).min(num_classes);
            let per_class: Vec<Vec<SimOutcome>> = (base..hi)
                .into_par_iter()
                .map(|class| {
                    merge_timelines_deltas_mapped(
                        t0,
                        t0,
                        |v| group.apply(class, v),
                        plan.deltas(),
                        plan.horizon(),
                    )
                })
                .collect();
            buf.clear();
            for outcomes in per_class {
                buf.extend(outcomes);
            }
            stats.classes += hi - base;
            stats.entries += buf.len();
            stats.met_entries += buf.iter().filter(|o| o.meeting.is_some()).count();
            visit(base, &buf);
            base = hi;
        }
        stats.answered = stats.entries * class_size;
        stats.met_total = stats.met_entries * class_size;
        if anonrv_obs::enabled() {
            anonrv_obs::counter_add("plan.representatives", stats.entries as u64);
        }
        Ok(stats)
    }

    /// Serve a longer-horizon outcome table at `plan`'s smaller horizon —
    /// [`PlannedOutcomes::truncate`] with the undetermined entries
    /// re-merged **in parallel** (rayon) through this sweep's trajectory
    /// cache, which on a warm cache costs timeline merges only, never a
    /// program execution.  The undetermined slots arrive class-major, so
    /// each class's surviving delays form one contiguous run; every run is
    /// resolved through a single delta-sweep pass (shared occupancy cursors
    /// and scratch, see `merge_timelines_deltas`) rather than one
    /// independent merge per slot.  Returns the truncated table and the
    /// number of entries that had to re-merge.
    pub fn serve_prefix<'p>(
        &self,
        full: &PlannedOutcomes<'_>,
        plan: &'p SweepPlan,
    ) -> Result<(PlannedOutcomes<'p>, usize), String> {
        validate_truncation(full.plan(), plan)?;
        let h = plan.horizon();
        let ndeltas = plan.deltas().len().max(1);
        // the undetermined slots, in slot (class-major, δ-minor) order
        let jobs: Vec<Stic> = full
            .table()
            .iter()
            .enumerate()
            .filter(|(slot, o)| prefix_determined(o, plan.deltas()[slot % ndeltas], h).is_none())
            .map(|(slot, _)| {
                let (r, c) = plan.orbits().representative(slot / ndeltas);
                Stic::new(r, c, plan.deltas()[slot % ndeltas])
            })
            .collect();
        // group the contiguous per-pair runs, then fan rayon out over the
        // groups: one delta-sweep pass resolves a pair's whole surviving
        // δ-grid, exactly as a cold `run_classes` would
        let mut groups: Vec<(NodeId, NodeId, Vec<Round>)> = Vec::new();
        for stic in &jobs {
            match groups.last_mut() {
                Some((r, c, deltas)) if *r == stic.earlier && *c == stic.later => {
                    deltas.push(stic.delay);
                }
                _ => groups.push((stic.earlier, stic.later, vec![stic.delay])),
            }
        }
        let per_group: Vec<Vec<SimOutcome>> = groups
            .par_iter()
            .map(|(r, c, deltas)| {
                let mut scratch = MergeScratch::new();
                self.engine.simulate_deltas_capped_with(&mut scratch, *r, *c, deltas, h)
            })
            .collect();
        let resolved: Vec<SimOutcome> = per_group.into_iter().flatten().collect();
        // `truncate` visits slots in order, so the resolved outcomes drain
        // in lockstep with its remerge calls
        let mut drain = jobs.iter().zip(resolved);
        let outcomes = full.truncate(plan, |stic| {
            let (expected, outcome) = drain.next().expect("one resolved outcome per remerge");
            debug_assert_eq!(stic, expected, "remerge order diverged from the job list");
            outcome
        })?;
        anonrv_obs::counter_add("plan.remerges", jobs.len() as u64);
        Ok((outcomes, jobs.len()))
    }

    /// Extend a **shorter**-horizon outcome table to `plan`'s larger horizon
    /// without restarting any merge from round zero: `prior` must describe
    /// the same partition and δ-grid at `prior.plan().horizon() <=
    /// plan.horizon()`, and every entry must be exact at that horizon (the
    /// contract a checksummed store table satisfies).  Entries that already
    /// met are final by stop-propagation and are served in O(1); unmet
    /// entries resume their merge at the recorded horizon through
    /// [`SweepEngine::simulate_extend`], fanned out with rayon.  The result
    /// is bit-identical to executing `plan` cold.  Returns the extended
    /// table and the number of entries that needed a resumed merge.
    pub fn extend_table<'p>(
        &self,
        prior: &PlannedOutcomes<'_>,
        plan: &'p SweepPlan,
    ) -> Result<(PlannedOutcomes<'p>, usize), String> {
        validate_extension(prior.plan(), plan)?;
        assert!(
            plan.horizon() <= self.engine.config().horizon,
            "plan horizon exceeds the engine horizon"
        );
        let h = plan.horizon();
        let ndeltas = plan.deltas().len().max(1);
        let table: Vec<SimOutcome> = (0..prior.table().len())
            .into_par_iter()
            .map(|slot| {
                let (r, c) = plan.orbits().representative(slot / ndeltas);
                let stic = Stic::new(r, c, plan.deltas()[slot % ndeltas]);
                self.engine.simulate_extend(&stic, &prior.table()[slot], h)
            })
            .collect();
        let extended = prior
            .table()
            .iter()
            .enumerate()
            .filter(|(slot, o)| o.meeting.is_none() && plan.deltas()[slot % ndeltas] <= h)
            .count();
        anonrv_obs::counter_add("plan.extends", extended as u64);
        Ok((PlannedOutcomes::from_table(plan, table)?, extended))
    }

    /// Validate the broadcast on a deterministic sample: every
    /// `sample_every`-th non-representative member query of the plan's grid
    /// is re-simulated *directly* through the underlying engine (no
    /// canonicalisation) and compared bit-for-bit against the planned
    /// answer.
    pub fn validate_sample(&self, plan: &SweepPlan, sample_every: usize) -> ValidationReport {
        assert!(sample_every >= 1, "sample_every must be at least 1");
        let outcomes = self.run(plan);
        let mut report = ValidationReport { checked: 0, mismatches: 0, first_mismatch: None };
        let mut counter = 0usize;
        for class in 0..self.orbits.num_pair_classes() {
            let rep = self.orbits.representative(class);
            for (u, v) in self.orbits.members(class) {
                if (u, v) == rep {
                    continue; // representatives were executed, not broadcast
                }
                for (di, &delta) in plan.deltas().iter().enumerate() {
                    counter += 1;
                    if !counter.is_multiple_of(sample_every) {
                        continue;
                    }
                    let stic = Stic::new(u, v, delta);
                    let planned = outcomes.get(u, v, di);
                    let direct = self.engine.simulate_capped(&stic, plan.horizon());
                    report.checked += 1;
                    if planned != direct {
                        report.mismatches += 1;
                        report.first_mismatch.get_or_insert((stic, planned, direct));
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{oriented_ring, oriented_torus};
    use anonrv_sim::{Navigator, Stop};

    /// Deterministic mover/waiter mix (same idiom as the sim crate's tests).
    struct Walker {
        seed: u64,
    }

    impl AgentProgram for Walker {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            let mut state = self.seed | 1;
            loop {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let roll = state >> 33;
                if roll.is_multiple_of(4) {
                    nav.wait((roll % 7 + 1) as Round)?;
                } else {
                    nav.move_via(roll as usize % nav.degree())?;
                }
            }
        }
    }

    #[test]
    fn planned_outcomes_match_direct_simulation_exactly() {
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let deltas: Vec<Round> = vec![0, 1, 2, 3];
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), 64);
        let outcomes = planned.run(&plan);
        for u in g.nodes() {
            for v in g.nodes() {
                for (di, &delta) in deltas.iter().enumerate() {
                    let direct = planned.engine().simulate(&Stic::new(u, v, delta));
                    assert_eq!(outcomes.get(u, v, di), direct, "({u}, {v}) delta {delta}");
                }
            }
        }
        assert_eq!(plan.num_representative_queries(), 12 * 4);
        assert_eq!(plan.num_member_queries(), 144 * 4);
    }

    #[test]
    fn simulate_many_groups_and_broadcasts_bit_identically() {
        let g = oriented_ring(8).unwrap();
        let program = Walker { seed: 7 };
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(200));
        let mut queries = Vec::new();
        for u in g.nodes() {
            for v in g.nodes() {
                for (delta, horizon) in [(0, 200), (2, 100), (5, 200)] {
                    queries.push((Stic::new(u, v, delta), horizon as Round));
                }
            }
        }
        let (outcomes, stats) = planned.simulate_many_counted(&queries);
        assert_eq!(stats.answered, queries.len());
        // 8 rotations collapse the 64 pairs to 8 classes per (delta, horizon)
        assert_eq!(stats.executed, 8 * 3);
        for (i, (stic, horizon)) in queries.iter().enumerate() {
            let direct = planned.engine().simulate_capped(stic, *horizon);
            assert_eq!(outcomes[i], direct, "{stic} horizon {horizon}");
        }
    }

    #[test]
    fn validation_passes_on_a_symmetric_family() {
        let g = oriented_torus(3, 3).unwrap();
        let program = Walker { seed: 42 };
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1, 3], 64);
        let report = planned.validate_sample(&plan, 3);
        assert!(report.checked > 0);
        assert!(report.is_valid(), "{:?}", report.first_mismatch);
    }

    #[test]
    fn run_classes_slices_concatenate_to_the_full_table() {
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 3], 64);
        let full = planned.run(&plan);
        let num_classes = planned.orbits().num_pair_classes();
        for shards in [1usize, 2, 3, 5] {
            let mut table = vec![None; plan.num_representative_queries()];
            for index in 0..shards {
                let classes: Vec<usize> =
                    (0..num_classes).filter(|c| c % shards == index).collect();
                let block = planned.run_classes(&plan, &classes);
                assert_eq!(block.len(), classes.len() * plan.deltas().len());
                for (k, &class) in classes.iter().enumerate() {
                    for di in 0..plan.deltas().len() {
                        let slot = class * plan.deltas().len() + di;
                        assert!(table[slot].is_none(), "class {class} executed twice");
                        table[slot] = Some(block[k * plan.deltas().len() + di]);
                    }
                }
            }
            let merged: Vec<_> = table.into_iter().map(|o| o.expect("full coverage")).collect();
            assert_eq!(merged, full.table(), "{shards}-way slicing diverged");
            let rewrapped = PlannedOutcomes::from_table(&plan, merged).unwrap();
            assert_eq!(rewrapped.get(5, 7, 1), full.get(5, 7, 1));
        }
        // from_table rejects a mis-sized table
        assert!(PlannedOutcomes::from_table(&plan, vec![]).is_err());
    }

    #[test]
    fn run_streamed_chunks_concatenate_to_the_full_table() {
        for g in [oriented_torus(3, 4).unwrap(), oriented_ring(8).unwrap()] {
            let program = Walker { seed: 0x5EED };
            let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
            assert!(planned.orbits().is_implicit(), "generator should stamp an implicit group");
            let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 3, 40], 64);
            let full = planned.run(&plan);
            for chunk in [1usize, 2, 5, 100] {
                let mut table = Vec::new();
                let mut bases = Vec::new();
                let stats = planned
                    .run_streamed(&plan, chunk, |base, outcomes| {
                        bases.push((base, outcomes.len()));
                        table.extend_from_slice(outcomes);
                    })
                    .unwrap();
                assert_eq!(table, full.table(), "chunk size {chunk} diverged");
                assert_eq!(stats.classes, planned.orbits().num_pair_classes());
                assert_eq!(stats.entries, full.table().len());
                assert_eq!(
                    stats.met_entries,
                    full.table().iter().filter(|o| o.meeting.is_some()).count()
                );
                // the implicit groups here are regular: class size = n
                assert_eq!(stats.answered, g.num_nodes() * g.num_nodes() * plan.deltas().len());
                assert_eq!(stats.met_total, stats.met_entries * g.num_nodes());
                // chunks arrive in class order, each δ-complete
                let mut expect_base = 0;
                for &(base, len) in &bases {
                    assert_eq!(base, expect_base);
                    assert_eq!(len % plan.deltas().len(), 0);
                    expect_base += len / plan.deltas().len();
                }
                assert_eq!(expect_base, stats.classes);
            }
        }
    }

    #[test]
    fn run_streamed_refuses_unsupported_configurations() {
        let g = oriented_ring(6).unwrap();
        let program = Walker { seed: 3 };
        // explicit partition: no closed-form action to stream through
        let explicit = PairOrbits::compute_explicit(&g);
        let planned = PlannedSweep::with_orbits(&explicit, &g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(explicit.clone(), vec![0, 1], 64);
        let err = planned.run_streamed(&plan, 4, |_, _| {}).unwrap_err();
        assert!(err.contains("implicit"), "{err}");
        // plan horizon above the engine horizon
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 128);
        let err = planned.run_streamed(&plan, 4, |_, _| {}).unwrap_err();
        assert!(err.contains("exceeds the engine horizon"), "{err}");
    }

    #[test]
    fn truncated_tables_are_bit_identical_to_cold_runs_at_the_smaller_horizon() {
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let deltas: Vec<Round> = vec![0, 2, 5, 40];
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let full_plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), 64);
        let full = planned.run(&full_plan);
        for h in [0 as Round, 1, 3, 10, 30, 64] {
            let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), h);
            let mut remerged = 0usize;
            let served = full
                .truncate(&plan, |stic| {
                    remerged += 1;
                    planned.engine().simulate_capped(stic, h)
                })
                .unwrap();
            let cold = planned.run(&plan);
            assert_eq!(served.table(), cold.table(), "horizon {h}");
            // prefix-determined entries never hit the remerge callback
            let undetermined = full
                .table()
                .iter()
                .enumerate()
                .filter(|(slot, o)| {
                    let delta = deltas[slot % deltas.len()];
                    delta <= h && o.meeting.is_none_or(|m| m.global_round > h)
                })
                .count();
            assert_eq!(remerged, undetermined, "horizon {h}: remerge call count");
        }
        // refusals: longer horizon, different grid, different partition
        let longer = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), 65);
        assert!(full.truncate(&longer, |_| unreachable!()).is_err());
        let other_grid = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 10);
        assert!(full.truncate(&other_grid, |_| unreachable!()).is_err());
        let other_graph = oriented_ring(12).unwrap();
        let foreign = SweepPlan::new(&other_graph, deltas, 10);
        assert!(full.truncate(&foreign, |_| unreachable!()).is_err());
    }

    #[test]
    fn extended_tables_are_bit_identical_to_cold_runs_at_the_larger_horizon() {
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let deltas: Vec<Round> = vec![0, 2, 5, 40];
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        for recorded in [0 as Round, 1, 3, 10, 30, 64] {
            let prior_plan =
                SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), recorded);
            let prior = planned.run(&prior_plan);
            for h in [recorded, 40, 64] {
                if h < recorded {
                    continue;
                }
                let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), h);
                let (served, extended) = planned.extend_table(&prior, &plan).unwrap();
                let cold = planned.run(&plan);
                assert_eq!(served.table(), cold.table(), "{recorded} -> {h}");
                // met priors are final and never count as resumed merges
                let unmet = prior
                    .table()
                    .iter()
                    .enumerate()
                    .filter(|(slot, o)| o.meeting.is_none() && deltas[slot % deltas.len()] <= h)
                    .count();
                assert_eq!(extended, unmet, "{recorded} -> {h}: resumed-merge count");
            }
        }
        // refusals: smaller horizon, different grid, different partition
        let prior_plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), 30);
        let prior = planned.run(&prior_plan);
        let shorter = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), 10);
        assert!(planned.extend_table(&prior, &shorter).is_err());
        let other_grid = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 64);
        assert!(planned.extend_table(&prior, &other_grid).is_err());
        let other_graph = oriented_ring(12).unwrap();
        let foreign = SweepPlan::new(&other_graph, deltas, 64);
        assert!(planned.extend_table(&prior, &foreign).is_err());
    }

    #[test]
    fn met_total_matches_the_exhaustive_count() {
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let deltas: Vec<Round> = vec![0, 1, 2, 3, 4];
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), 64);
        let outcomes = planned.run(&plan);
        let mut direct = 0usize;
        for u in g.nodes() {
            for v in g.nodes() {
                for &delta in &deltas {
                    if planned.engine().simulate(&Stic::new(u, v, delta)).met() {
                        direct += 1;
                    }
                }
            }
        }
        assert_eq!(outcomes.met_total(), direct);
    }
}
