//! EXP-L32: SymmRV on symmetric STICs with delta >= Shrink (Lemmas 3.2 / 3.3).
//!
//! Flags:
//! * `--full` — the EXPERIMENTS.md configuration;
//! * `--exhaustive` — every symmetric pair instead of the `max_pairs` cap
//!   (the pair-orbit planner makes the uncapped tables affordable);
//! * `--cache-dir <dir>` — persistent plan cache (`anonrv-store`): warm runs
//!   skip planning and trajectory recording, and the compression note
//!   reports the hit/miss traffic.

use anonrv_experiments::symm;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut config = if full { symm::SymmConfig::full() } else { symm::SymmConfig::default() };
    config.exhaustive = args.iter().any(|a| a == "--exhaustive");
    if let Some(pos) = args.iter().position(|a| a == "--cache-dir") {
        match args.get(pos + 1) {
            Some(dir) => config.cache_dir = Some(dir.into()),
            None => {
                eprintln!("--cache-dir requires a directory argument");
                std::process::exit(2);
            }
        }
    }
    println!("{}", symm::run(&config));
}
