//! Error type shared by every fallible operation of the crate.

use std::fmt;

/// Errors raised while building, validating or querying a [`crate::PortGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was outside `0..n`.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A port index was outside `0..deg(node)`.
    PortOutOfRange {
        /// Node whose port set was addressed.
        node: usize,
        /// Offending port.
        port: usize,
        /// Degree of the node.
        degree: usize,
    },
    /// The same port of the same node was used by two different edges.
    DuplicatePort {
        /// Node with the conflicting port.
        node: usize,
        /// The port used twice.
        port: usize,
    },
    /// A self-loop was requested; the paper's model uses simple graphs.
    SelfLoop {
        /// The node.
        node: usize,
    },
    /// Two parallel edges between the same pair of nodes were requested.
    ParallelEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// After building, some node had a "hole" in its port numbering, i.e. the
    /// used ports were not exactly `0..deg`.
    NonContiguousPorts {
        /// Offending node.
        node: usize,
    },
    /// A node ended up with degree zero (isolated); the model requires every
    /// node to have at least one incident edge and the graph to be connected.
    IsolatedNode {
        /// Offending node.
        node: usize,
    },
    /// The built graph is not connected.
    Disconnected,
    /// A generator received parameters outside its supported range.
    InvalidParameter {
        /// Human readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range (graph has {n} nodes)")
            }
            GraphError::PortOutOfRange { node, port, degree } => {
                write!(f, "port {port} out of range at node {node} (degree {degree})")
            }
            GraphError::DuplicatePort { node, port } => {
                write!(f, "port {port} at node {node} used by more than one edge")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} not allowed"),
            GraphError::ParallelEdge { u, v } => {
                write!(f, "parallel edge between {u} and {v} not allowed")
            }
            GraphError::NonContiguousPorts { node } => {
                write!(f, "ports at node {node} are not contiguous 0..deg")
            }
            GraphError::IsolatedNode { node } => write!(f, "node {node} has no incident edge"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphError {
    /// Helper for generator parameter validation.
    pub fn invalid(reason: impl Into<String>) -> Self {
        GraphError::InvalidParameter { reason: reason.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::PortOutOfRange { node: 3, port: 7, degree: 2 };
        let s = e.to_string();
        assert!(s.contains("port 7"));
        assert!(s.contains("node 3"));
        assert!(s.contains("degree 2"));
    }

    #[test]
    fn invalid_helper_builds_parameter_error() {
        let e = GraphError::invalid("n must be at least 3");
        assert_eq!(e, GraphError::InvalidParameter { reason: "n must be at least 3".to_string() });
        assert!(e.to_string().contains("n must be at least 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::Disconnected, GraphError::Disconnected);
        assert_ne!(GraphError::Disconnected, GraphError::SelfLoop { node: 0 });
    }
}
