//! EXP-T31 — Theorem 3.1 / Corollary 3.1: the universal algorithm
//! `UniversalRV` achieves rendezvous for **every feasible STIC** with no
//! a-priori knowledge, and the feasibility characterisation is exact.
//!
//! The experiment builds a mixed suite of STICs (nonsymmetric pairs with
//! several delays, symmetric pairs with `δ ≥ Shrink`, symmetric pairs with
//! `δ < Shrink`), classifies each with the Corollary 3.1 decision procedure,
//! simulates `UniversalRV` on each, and checks the exact agreement:
//! *feasible ⇒ met, infeasible ⇒ not met* (the latter within the horizon at
//! which the feasible counterpart would have been solved).
//!
//! `UniversalRV` is exponential (Proposition 4.1), so the suite is restricted
//! to STICs whose resolving phase index stays below a configurable budget;
//! EXPERIMENTS.md records the exact instances used.

use anonrv_core::feasibility::{FeasibilityOracle, SticClass};
use anonrv_core::label::TrailSignature;
use anonrv_core::pairing::phase_of;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_sim::{EngineConfig, Round, Stic};
use anonrv_store::SweepSession;
use anonrv_uxs::{LengthRule, PseudorandomUxs};

use crate::report::{compression_note, fmt_opt_rounds, fmt_rounds, PlanCompression, Table};
use crate::runner::class_name;
use crate::suite::{
    all_symmetric_pairs, nonsymmetric_pairs, nonsymmetric_workloads, symmetric_pairs,
    symmetric_workloads, Scale,
};

/// Configuration of the universal-algorithm experiment.
#[derive(Debug, Clone)]
pub struct UniversalConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Maximum pairs per instance (per kind).
    pub max_pairs: usize,
    /// Maximum number of nodes of simulated instances.
    pub max_nodes: usize,
    /// Maximum resolving-phase index a STIC may have to be simulated.
    pub max_phase_budget: u64,
    /// Delays applied to nonsymmetric pairs.
    pub nonsymmetric_deltas: Vec<Round>,
    /// UXS length rule (kept short so phases stay cheap; coverage on the
    /// selected instances is verified by the integration suite).
    pub uxs_rule: LengthRule,
    /// Evaluate **every** symmetric pair of the symmetric families instead
    /// of capping at `max_pairs` (the phase budget still gates per-case
    /// cost).  Nonsymmetric pairs stay capped: on rigid families the
    /// planner cannot compress them, so exhaustive tables there would buy
    /// coverage with raw simulation time.
    pub exhaustive: bool,
}

impl Default for UniversalConfig {
    fn default() -> Self {
        UniversalConfig {
            scale: Scale::Quick,
            max_pairs: 2,
            max_nodes: 6,
            max_phase_budget: 260,
            nonsymmetric_deltas: vec![0, 1, 3],
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
            exhaustive: false,
        }
    }
}

impl UniversalConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        UniversalConfig {
            scale: Scale::Full,
            max_pairs: 3,
            max_nodes: 7,
            max_phase_budget: 700,
            nonsymmetric_deltas: vec![0, 1, 3, 5],
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
            exhaustive: false,
        }
    }
}

/// One STIC of the mixed suite and its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversalRecord {
    /// Instance label.
    pub label: String,
    /// Number of nodes.
    pub n: usize,
    /// Starting pair.
    pub pair: (usize, usize),
    /// Delay.
    pub delta: Round,
    /// STIC class (Corollary 3.1).
    pub class: String,
    /// Whether the STIC is feasible according to the characterisation.
    pub feasible: bool,
    /// Whether `UniversalRV` met within the horizon.
    pub met: bool,
    /// Rendezvous time (rounds after the later agent's start).
    pub time: Option<Round>,
    /// Index of the phase whose parameters resolve this STIC (the horizon is
    /// the completion bound of that phase).
    pub resolving_phase: u64,
    /// Simulation horizon.
    pub horizon: Round,
}

impl UniversalRecord {
    /// The record agrees with Theorem 3.1 + Lemma 3.1: feasible iff met.
    pub fn agrees_with_characterisation(&self) -> bool {
        self.feasible == self.met
    }
}

/// A planned STIC (before simulation).
#[derive(Debug, Clone)]
struct Planned {
    label: String,
    graph: anonrv_graph::PortGraph,
    u: usize,
    v: usize,
    delta: Round,
    resolving_phase: u64,
    /// Classification, resolved at planning time through the per-workload
    /// [`anonrv_core::FeasibilityOracle`] so the parallel simulation loop
    /// does no pair-space work.
    class: SticClass,
}

fn plan(config: &UniversalConfig) -> Vec<Planned> {
    let mut planned = Vec::new();
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let scheme = TrailSignature::new(uxs);
    // nonsymmetric STICs.  The substituted AsymmRV needs (a) the UXS to cover
    // the instance and (b) the pair's trail labels to be distinct — both are
    // per-instance verifications required by DESIGN.md §4.1/§4.2, so pairs
    // failing them are excluded here (none do on the shipped suites; the
    // integration tests assert that).
    for w in nonsymmetric_workloads(config.scale) {
        if w.n() > config.max_nodes {
            continue;
        }
        if !anonrv_uxs::covers_from_all(&w.graph, &anonrv_uxs::UxsProvider::sequence(&uxs, w.n())) {
            continue;
        }
        let oracle = FeasibilityOracle::new(&w.graph);
        for (u, v) in nonsymmetric_pairs(&w.graph, config.max_pairs) {
            if !anonrv_core::label::LabelScheme::labels_distinct(&scheme, &w.graph, u, v, w.n()) {
                continue;
            }
            for &delta in &config.nonsymmetric_deltas {
                let phase = phase_of(w.n(), 1, delta.max(1) as u64);
                if phase <= config.max_phase_budget {
                    planned.push(Planned {
                        label: w.label.clone(),
                        graph: w.graph.clone(),
                        u,
                        v,
                        delta,
                        resolving_phase: phase,
                        class: oracle.classify(u, v, delta),
                    });
                }
            }
        }
    }
    // symmetric STICs: one feasible (delta = Shrink) and one infeasible
    // (delta = Shrink − 1) per pair
    for w in symmetric_workloads(config.scale) {
        if w.n() > config.max_nodes {
            continue;
        }
        if !anonrv_uxs::covers_from_all(&w.graph, &anonrv_uxs::UxsProvider::sequence(&uxs, w.n())) {
            continue;
        }
        let selected = if config.exhaustive {
            all_symmetric_pairs(&w.graph)
        } else {
            symmetric_pairs(&w.graph, config.max_pairs)
        };
        for p in selected {
            let phase = phase_of(w.n(), p.shrink, p.shrink as u64);
            if phase > config.max_phase_budget {
                continue;
            }
            planned.push(Planned {
                label: w.label.clone(),
                graph: w.graph.clone(),
                u: p.u,
                v: p.v,
                delta: p.shrink as Round,
                resolving_phase: phase,
                class: SticClass::SymmetricFeasible { shrink: p.shrink },
            });
            if p.shrink >= 1 {
                planned.push(Planned {
                    label: w.label.clone(),
                    graph: w.graph.clone(),
                    u: p.u,
                    v: p.v,
                    delta: p.shrink as Round - 1,
                    resolving_phase: phase,
                    class: SticClass::SymmetricInfeasible { shrink: p.shrink },
                });
            }
        }
    }
    planned
}

/// The completion horizon a planned STIC is simulated to.
fn case_horizon(algo: &UniversalRv<'_, TrailSignature>, p: &Planned) -> Round {
    let (n_hint, d_hint) = match p.class {
        SticClass::SymmetricFeasible { shrink } | SticClass::SymmetricInfeasible { shrink } => {
            (p.graph.num_nodes(), shrink.max(1))
        }
        _ => (p.graph.num_nodes(), 1),
    };
    algo.completion_horizon(n_hint, d_hint, p.delta.max(1))
}

/// Run the experiment and return the raw records.
pub fn collect(config: &UniversalConfig) -> Vec<UniversalRecord> {
    collect_with_stats(config).0
}

/// Run the experiment and return the raw records plus the per-instance
/// pair-orbit planning statistics.
///
/// `UniversalRV` takes no parameters, so every STIC of one instance runs
/// the *same* program: the sweep opens one in-memory [`SweepSession`] per
/// instance at the largest planned horizon — the pair-orbit partition
/// collapses view-equivalent `(pair, δ, horizon)` cases onto one
/// representative each, the trajectory cache records each canonical start
/// node once, and rayon fans out over the representative merges (each case
/// capped at its own, possibly smaller, horizon).
pub fn collect_with_stats(
    config: &UniversalConfig,
) -> (Vec<UniversalRecord>, Vec<PlanCompression>) {
    let planned = plan(config);
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let mut records = Vec::new();
    let mut stats = Vec::new();
    // `plan` emits each instance's cases contiguously
    let mut start = 0;
    while start < planned.len() {
        let end = planned[start..]
            .iter()
            .position(|p| p.label != planned[start].label)
            .map_or(planned.len(), |k| start + k);
        let group = &planned[start..end];
        let graph = &group[0].graph;
        let queries: Vec<(Stic, Round)> =
            group.iter().map(|p| (Stic::new(p.u, p.v, p.delta), case_horizon(&algo, p))).collect();
        let max_horizon =
            queries.iter().map(|&(_, h)| h).max().expect("instance groups are non-empty");
        let mut sweep =
            SweepSession::in_memory(graph, &algo, EngineConfig::with_horizon(max_horizon));
        let outcomes = sweep.simulate_cases(&queries);
        let mut instance = PlanCompression::new(
            group[0].label.clone(),
            graph.num_nodes() * graph.num_nodes(),
            sweep.orbits().num_pair_classes(),
        );
        instance.absorb(&sweep.stats());
        stats.push(instance);
        records.extend(group.iter().zip(queries.iter().zip(outcomes)).map(
            |(p, (&(_, horizon), outcome))| UniversalRecord {
                label: p.label.clone(),
                n: p.graph.num_nodes(),
                pair: (p.u, p.v),
                delta: p.delta,
                class: class_name(&p.class).to_string(),
                feasible: p.class.is_feasible(),
                met: outcome.met(),
                time: outcome.rendezvous_time(),
                resolving_phase: p.resolving_phase,
                horizon,
            },
        ));
        start = end;
    }
    (records, stats)
}

/// Run the experiment as a report table (one row per STIC).
pub fn run(config: &UniversalConfig) -> Table {
    let (records, stats) = collect_with_stats(config);
    let mut table = Table::new(
        "EXP-T31",
        "UniversalRV on a mixed STIC suite with zero a-priori knowledge (Theorem 3.1 / Corollary 3.1)",
        &[
            "instance",
            "pair",
            "delta",
            "class",
            "feasible",
            "met",
            "agreement",
            "time",
            "resolving phase",
            "horizon",
        ],
    );
    for r in &records {
        table.push_row([
            r.label.clone(),
            format!("({}, {})", r.pair.0, r.pair.1),
            r.delta.to_string(),
            r.class.clone(),
            r.feasible.to_string(),
            r.met.to_string(),
            r.agrees_with_characterisation().to_string(),
            fmt_opt_rounds(r.time),
            r.resolving_phase.to_string(),
            fmt_rounds(r.horizon),
        ]);
    }
    let agreements = records.iter().filter(|r| r.agrees_with_characterisation()).count();
    table.push_note(format!(
        "Paper: a STIC is feasible iff it is nonsymmetric or symmetric with delta >= Shrink, and \
         UniversalRV solves exactly the feasible ones; agreement on this suite: {agreements}/{}.",
        records.len()
    ));
    table.push_note(compression_note(&stats));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_rv_agrees_with_the_feasibility_characterisation() {
        // a deliberately small sub-suite so the unit test stays fast; the
        // integration suite runs the full quick configuration
        let config = UniversalConfig {
            max_pairs: 1,
            max_nodes: 5,
            max_phase_budget: 130,
            nonsymmetric_deltas: vec![0, 1],
            ..UniversalConfig::default()
        };
        let records = collect(&config);
        assert!(!records.is_empty());
        assert!(records.iter().any(|r| r.feasible));
        assert!(records.iter().any(|r| !r.feasible));
        for r in &records {
            assert!(r.agrees_with_characterisation(), "characterisation mismatch on {r:?}");
        }
    }

    #[test]
    fn the_plan_respects_the_phase_budget() {
        let config = UniversalConfig::default();
        for p in plan(&config) {
            assert!(p.resolving_phase <= config.max_phase_budget);
            assert!(p.graph.num_nodes() <= config.max_nodes);
        }
    }
}
