//! Seeded random graph families (fully reproducible workload generators).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::graph::PortGraph;
use crate::Result;

/// Random connected graph on `n ≥ 2` nodes: a uniformly random recursive
/// spanning tree plus `extra_edges` additional uniformly random non-parallel
/// edges.  Ports are assigned in insertion order, so the generated graphs are
/// overwhelmingly free of nontrivial symmetries — the standard workload for
/// the nonsymmetric (`AsymmRV`) experiments.
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Result<PortGraph> {
    if n < 2 {
        return Err(GraphError::invalid("random_connected requires n >= 2"));
    }
    let max_extra = n * (n - 1) / 2 - (n - 1);
    if extra_edges > max_extra {
        return Err(GraphError::invalid(format!(
            "extra_edges={extra_edges} exceeds the {max_extra} available non-tree edges"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = PortGraphBuilder::new(n);

    // random recursive tree with shuffled node order
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        b.add_edge_auto(order[i], parent)?;
    }

    // extra edges: tree edges are detected through the builder's own
    // parallel-edge rejection and remembered in `existing` to avoid retrying them
    let mut existing: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut added = 0usize;
    let mut edge_set: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    while added < extra_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if existing.contains(&key) || edge_set.contains(&key) {
            continue;
        }
        match b.add_edge_auto(u, v) {
            Ok(_) => {
                edge_set.insert(key);
                added += 1;
            }
            Err(GraphError::ParallelEdge { .. }) => {
                existing.insert(key);
            }
            Err(e) => return Err(e),
        }
    }
    b.build()
}

/// Random `d`-regular graph on `n` nodes via the configuration (pairing)
/// model with rejection of loops and parallel edges.  Requires `n·d` even,
/// `d < n`.  Ports are assigned in pairing order.  Retries up to 200 times
/// before giving up.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<PortGraph> {
    if n < 2 || d == 0 || d >= n {
        return Err(GraphError::invalid("random_regular requires n >= 2 and 0 < d < n"));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::invalid("random_regular requires n*d even"));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut b = PortGraphBuilder::new(n);
        let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                continue 'attempt;
            }
            b.add_edge_auto(u, v).map_err(|_| GraphError::invalid("pairing failed"))?;
        }
        match b.build() {
            Ok(g) => return Ok(g),
            Err(GraphError::Disconnected) => continue 'attempt,
            Err(e) => return Err(e),
        }
    }
    Err(GraphError::invalid(format!(
        "could not generate a connected {d}-regular graph on {n} nodes after 200 attempts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::OrbitPartition;

    #[test]
    fn random_connected_is_reproducible() {
        let a = random_connected(20, 10, 42).unwrap();
        let b = random_connected(20, 10, 42).unwrap();
        assert_eq!(a, b);
        let c = random_connected(20, 10, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_connected_has_expected_edge_count() {
        let g = random_connected(15, 7, 1).unwrap();
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14 + 7);
        g.validate().unwrap();
    }

    #[test]
    fn random_connected_rejects_impossible_requests() {
        assert!(random_connected(1, 0, 0).is_err());
        assert!(random_connected(4, 100, 0).is_err());
    }

    #[test]
    fn random_connected_is_typically_asymmetric() {
        // not guaranteed in general, but overwhelmingly likely for these sizes;
        // the fixed seeds below have been checked once and stay stable forever.
        for seed in [7u64, 11, 13] {
            let g = random_connected(12, 6, seed).unwrap();
            assert!(OrbitPartition::compute(&g).is_asymmetric(), "seed {seed}");
        }
    }

    #[test]
    fn random_regular_produces_regular_connected_graphs() {
        let g = random_regular(12, 3, 5).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
        assert!(random_regular(1, 0, 0).is_err());
    }

    #[test]
    fn random_regular_is_reproducible() {
        let a = random_regular(10, 3, 99).unwrap();
        let b = random_regular(10, 3, 99).unwrap();
        assert_eq!(a, b);
    }
}
