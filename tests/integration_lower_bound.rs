//! Cross-crate integration tests for the Section 4 lower bound (Theorem 4.1),
//! including the astronomical-horizon regime the symbolic timeline path
//! opens up: exact meeting rounds at `2^40`-scale horizons, pinned against
//! closed-form predictions on an oriented ring.

use anonrv_core::lower_bound::{
    check_schedule_explicit, check_schedule_symbolic, ObliviousSchedule, ObliviousStep,
};
use anonrv_experiments::lower_bound_exp::{self, LowerBoundConfig};
use anonrv_graph::distance::distance;
use anonrv_graph::generators::{oriented_ring, qh_hat, qh_tree, z_set, Cardinal};
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_sim::{
    drive_finite_state, AgentProgram, FiniteStateProgram, Navigator, Round, StepAction,
    StepDecision, Stic, Stop, TrajectoryCache,
};

#[test]
fn the_lower_bound_experiment_is_consistent_for_k_up_to_six() {
    let config = LowerBoundConfig { ks: vec![1, 2, 3, 4, 5, 6], ..LowerBoundConfig::default() };
    let records = lower_bound_exp::collect(&config);
    assert_eq!(records.len(), 6);
    for r in &records {
        assert!(r.consistent_with_theorem(), "{r:?}");
    }
    // exponential growth of the worst meeting time
    let worst: Vec<u128> = records.iter().map(|r| r.meeting_worst_time.unwrap()).collect();
    for pair in worst.windows(2) {
        assert!(pair[1] > pair[0]);
    }
    assert!(worst[5] >= 32, "k = 6 threshold is 32");
}

#[test]
fn q_hat_structure_matches_the_paper() {
    for h in [2usize, 3, 4] {
        let tree = qh_tree(h).unwrap();
        let hat = qh_hat(h).unwrap();
        let n = 1 + 4 * (3usize.pow(h as u32) - 1) / 2;
        assert_eq!(tree.graph.num_nodes(), n);
        assert_eq!(hat.graph.num_nodes(), n);
        assert_eq!(tree.num_leaves(), 4 * 3usize.pow(h as u32 - 1));
        assert!(hat.graph.is_regular());
        assert_eq!(hat.graph.max_degree(), 4);
        assert!(hat.graph.is_connected());
        assert!(OrbitPartition::compute(&hat.graph).is_fully_symmetric());
        // every edge carries opposite cardinal ports
        assert!(hat.graph.edges().all(|(_, pu, _, pv)| (pu + 2) % 4 == pv));
    }
}

#[test]
fn z_set_nodes_are_at_distance_d_from_the_root_and_pairwise_distinct() {
    for k in [1usize, 2] {
        let q = qh_hat(4 * k).unwrap();
        let z = z_set(&q, k).unwrap();
        assert_eq!(z.len(), 1 << k);
        let mut sorted = z.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), z.len(), "Z nodes must be distinct");
        for &v in &z {
            assert_eq!(distance(&q.graph, q.root, v), 2 * k, "k = {k}, v = {v}");
        }
    }
}

#[test]
fn oblivious_schedules_round_trip_between_letters_and_steps() {
    let schedule = ObliviousSchedule::meeting_sweep(2);
    let word: String = schedule.steps.iter().map(|s| s.letter()).collect();
    let parsed = ObliviousSchedule::parse(&word).unwrap();
    assert_eq!(parsed, schedule);
    assert_eq!(ObliviousStep::Stay.letter(), '.');
    assert_eq!(ObliviousStep::Go(Cardinal::W).letter(), 'W');
}

#[test]
fn schedules_with_stays_behave_identically_in_both_checkers() {
    let k = 1usize;
    let q = qh_hat(4 * k).unwrap();
    for word in ["..NNSS", "N.N.SS", ".E.W.N", "NNNN..", "NN..EE"] {
        let schedule = ObliviousSchedule::parse(word).unwrap();
        let explicit = check_schedule_explicit(&q, k, &schedule);
        let symbolic = check_schedule_symbolic(k, &schedule);
        assert_eq!(explicit.times, symbolic.times, "word {word}");
    }
}

/// A memoryless rotor: always leave by port 0.  On an oriented ring, port
/// 0 is the successor edge, so the agent's position at local round `t` is
/// `start + t (mod n)` — every rendezvous question about two rotors has a
/// closed-form answer, which is what makes the astronomical assertions
/// below predictions rather than replays.
struct Rotor;

impl FiniteStateProgram for Rotor {
    fn initial_state(&self) -> u64 {
        0
    }

    fn decide(&self, _state: u64, _degree: usize, _entry_port: Option<usize>) -> StepDecision {
        StepDecision { action: StepAction::Move(0), next: 0 }
    }
}

impl AgentProgram for Rotor {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        drive_finite_state(self, nav)
    }

    fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
        Some(self)
    }
}

/// Exact rendezvous at an astronomical horizon, pinned by closed form: on
/// an oriented ring-`n`, two rotors at `u` and `v` with delay δ keep the
/// constant separation `(v - u - δ) mod n`, so they meet **iff**
/// `δ ≡ v - u (mod n)` — at the exact global round the later agent
/// appears — and never otherwise.  The symbolic path must report those
/// exact rounds and exact move totals at `2^40`-scale horizons without
/// unrolling a single round, in exact agreement with a small-horizon
/// explicit control run shifted by the closed-form offset.
#[test]
fn astronomical_meeting_rounds_match_the_closed_form_on_a_ring() {
    let n = 8usize;
    let g = oriented_ring(n).unwrap();
    let program = Rotor;
    let big: Round = (1 << 40) + 16;
    let cache = TrajectoryCache::new(&g, &program, big);

    // small-horizon explicit control: δ = 3 ≡ v - u (mod 8) meets exactly
    // when the later agent appears
    let (u, v) = (0usize, 3usize);
    let small_delta: Round = 3;
    let small =
        TrajectoryCache::new(&g, &program, 64).simulate_capped(&Stic::new(u, v, small_delta), 64);
    let small_meet = small.meeting.expect("control run must meet");
    assert_eq!(small_meet.global_round, small_delta);

    // the astronomical delay keeps the same residue: 2^40 ≡ 0 (mod 8)
    let big_delta: Round = (1 << 40) + 3;
    let outcome = cache.simulate_capped(&Stic::new(u, v, big_delta), big);
    let meet = outcome.meeting.expect("aligned rotors must meet at the delay round");
    // closed form: the meeting is at the later agent's arrival round,
    // exactly — not a round later, not saturated to any cap
    assert_eq!(meet.global_round, big_delta);
    assert_eq!(meet.later_round, small_meet.later_round);
    assert_eq!(
        meet.node as Round,
        (u as Round + big_delta) % n as Round,
        "the meeting node is the rotor's closed-form position at the delay round"
    );
    // the rotor moves every round: the move totals at the two meetings
    // differ by exactly the delay difference
    assert_eq!(
        outcome.earlier_moves as u128,
        small.earlier_moves as u128 + (big_delta - small_delta)
    );
    assert_eq!(outcome.later_moves, small.later_moves);

    // misaligned residue: δ = 1 ≢ 3 (mod 8) — the separation is constant
    // and nonzero, so there is no meeting at *any* horizon; the outcome at
    // 2^40 must be exactly "unmet", with exact move totals
    let unmet = cache.simulate_capped(&Stic::new(u, v, 1), big);
    assert!(!unmet.met(), "misaligned rotors can never meet");
    let unmet_small =
        TrajectoryCache::new(&g, &program, 64).simulate_capped(&Stic::new(u, v, 1), 64);
    assert!(!unmet_small.met());
    assert_eq!(unmet.earlier_moves as u128, unmet_small.earlier_moves as u128 + (big - 64));
    assert_eq!(unmet.later_moves as u128, unmet_small.later_moves as u128 + (big - 64));

    // and none of it unrolled: every outcome above came from cycle algebra
    assert_eq!(cache.computed(), 0, "astronomical outcomes must not record explicit timelines");
    assert_eq!(cache.computed_symbolic(), 2, "only the two queried starts are detected");
}

#[test]
fn no_schedule_of_length_below_the_threshold_meets_the_whole_family() {
    // Exhaustive over *all* words of length < 2^(k-1) for k = 3 (threshold 4)
    // over the alphabet {stay, N, E, S, W}: 1 + 5 + 25 + 125 = 156 schedules.
    // Theorem 4.1 says none of them can meet every STIC of the family.
    let k = 3usize;
    let threshold = 1usize << (k - 1);
    let alphabet = [
        ObliviousStep::Stay,
        ObliviousStep::Go(Cardinal::N),
        ObliviousStep::Go(Cardinal::E),
        ObliviousStep::Go(Cardinal::S),
        ObliviousStep::Go(Cardinal::W),
    ];
    let mut checked = 0usize;
    for len in 0..threshold {
        for code in 0..5usize.pow(len as u32) {
            let mut word = Vec::with_capacity(len);
            let mut rest = code;
            for _ in 0..len {
                word.push(alphabet[rest % 5]);
                rest /= 5;
            }
            let schedule = ObliviousSchedule::new(word);
            assert!(
                !check_schedule_symbolic(k, &schedule).met_all(),
                "a schedule of length {len} < {threshold} met the whole family: {schedule:?}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 156);
}
