//! The content-addressed on-disk plan cache.
//!
//! A [`Store`] is a directory of checksummed artifacts keyed by the
//! [`canonical hash`](anonrv_graph::fingerprint) of the graph they were
//! derived from (plus, where relevant, the *program key* and horizon of the
//! recording).  Three artifact families cover everything a planned sweep
//! computes:
//!
//! | artifact | key | skips on a warm hit |
//! |---|---|---|
//! | automorphism group / pair orbits | graph | planning (group search) |
//! | trajectory timelines | graph + program key + horizon | every program execution |
//! | plan outcome tables | graph + program key + plan | the whole sweep |
//!
//! Every load path is **fallible by design**: a missing file, a truncated
//! file, a corrupted payload, a format-version mismatch or an identity
//! mismatch (hash collision, renamed file) all surface as a plain cache
//! miss, and the caller recomputes and overwrites.  The cache can therefore
//! be deleted, copied between machines, or shared by concurrent shard
//! processes (files are written atomically via rename) without any
//! correctness risk — it only ever changes *when* work happens, never what
//! the results are.
//!
//! ## Program keys
//!
//! Timelines and outcomes depend on the agent program, which Rust cannot
//! introspect.  Callers pass a **program key** — a string that must uniquely
//! identify the program *including its parameters* (e.g. `"walker-5eed"`,
//! `"symm-rv-n12-d2-delta4"`).  Two different programs sharing a key is the
//! one way to poison this cache; key discipline is the caller's contract,
//! everything else is verified.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use anonrv_graph::{NodeId, PortGraph};
use anonrv_plan::{Automorphisms, PairOrbits, PlannedSweep, SweepPlan};
use anonrv_sim::{
    AgentProgram, EngineConfig, Meeting, Round, SimOutcome, SweepEngine, Timeline, TimelineSeg,
};

use crate::codec::{fnv64, unframe, Dec, Enc, Kind};

/// Where a value came from: loaded warm from the store, or computed cold
/// (and then saved back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Served from a valid cache artifact; the computation was skipped.
    Warm,
    /// Recomputed (no artifact, or an artifact that failed an integrity or
    /// identity gate) and written back to the store.
    Cold,
}

impl Provenance {
    /// `true` iff the value was served from the cache.
    pub fn is_warm(&self) -> bool {
        matches!(self, Provenance::Warm)
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Provenance::Warm => "warm",
            Provenance::Cold => "cold",
        })
    }
}

/// Warm/cold breakdown of preparing one planned sweep through a [`Store`]
/// (what the experiment tables and the CLI surface as cache provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStats {
    /// Whether the pair-orbit partition was loaded or computed.
    pub orbits: Provenance,
    /// Trajectory timelines preloaded from the store.
    pub timeline_hits: usize,
    /// Timelines that had to be recorded by executing the program.
    pub timeline_misses: usize,
}

impl WarmStats {
    /// Fill in [`WarmStats::timeline_misses`] after the sweep ran: every
    /// timeline the engine recorded beyond the preloaded ones was a miss.
    pub fn record_misses(&mut self, engine: &SweepEngine<'_>) {
        self.timeline_misses = engine.cache().computed().saturating_sub(self.timeline_hits);
    }
}

/// A content-addressed directory of planning artifacts.  See the module
/// docs for the layout and the integrity model.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) the cache directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write `bytes` to `path` atomically (temp file + rename), so a
    /// concurrent reader — another shard process — never observes a partial
    /// artifact.
    pub(crate) fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path)
    }

    /// Run `f` under an exclusive advisory lock (a `create_new` lock file
    /// next to the artifact), serialising read-merge-write sequences like
    /// [`Store::persist_engine`] across processes so concurrent shards
    /// cannot drop each other's contributions.
    ///
    /// Best-effort by design: a lock older than 60 s is treated as left
    /// behind by a dead process and broken, and after ~5 s of waiting the
    /// closure runs anyway — the artifact write itself stays atomic, so the
    /// worst degradation is the pre-lock behaviour (a lost merge), never a
    /// corrupt artifact or a deadlocked fleet.
    fn with_lock<T>(&self, artifact: &Path, f: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        let lock = artifact.with_extension("lock");
        let mut attempts = 0;
        let acquired = loop {
            match fs::OpenOptions::new().write(true).create_new(true).open(&lock) {
                Ok(_) => break true,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&lock)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age.as_secs() >= 60);
                    if stale {
                        let _ = fs::remove_file(&lock);
                        continue;
                    }
                    attempts += 1;
                    if attempts >= 50 {
                        break false; // proceed unlocked rather than hang
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(_) => break false, // unlockable filesystem: proceed
            }
        };
        let result = f();
        if acquired {
            let _ = fs::remove_file(&lock);
        }
        result
    }

    // -- orbits ------------------------------------------------------------

    fn orbits_path(&self, g: &PortGraph) -> PathBuf {
        self.root.join(format!("orbits-{:032x}.anrv", g.canonical_hash()))
    }

    /// Load the pair-orbit partition of `g`, or `None` on any miss
    /// (absent / corrupt / stale / foreign file).  A loaded group is fully
    /// re-verified against `g` by
    /// [`Automorphisms::from_permutations`] before it is trusted.
    pub fn load_orbits(&self, g: &PortGraph) -> Option<PairOrbits> {
        let bytes = fs::read(self.orbits_path(g)).ok()?;
        let mut d = unframe(Kind::Orbits, &bytes)?;
        if d.u128()? != g.canonical_hash() {
            return None;
        }
        let n = d.usize()?;
        if n != g.num_nodes() {
            return None;
        }
        let k = d.usize()?;
        let mut perms = Vec::with_capacity(k);
        for _ in 0..k {
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(u32::try_from(d.u64()?).ok()?);
            }
            perms.push(p);
        }
        if !d.exhausted() {
            return None;
        }
        let autos = Automorphisms::from_permutations(g, perms).ok()?;
        Some(PairOrbits::from_automorphisms(autos))
    }

    /// Persist the pair-orbit partition of `g` (its automorphism
    /// permutations — the partition is a deterministic function of the
    /// group, rebuilt on load).  Returns the artifact path.
    pub fn save_orbits(&self, g: &PortGraph, orbits: &PairOrbits) -> io::Result<PathBuf> {
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.usize(orbits.group_order());
        for p in orbits.automorphisms().permutations() {
            for &img in p {
                e.u64(img as u64);
            }
        }
        let path = self.orbits_path(g);
        self.write_atomic(&path, &e.into_frame(Kind::Orbits))?;
        Ok(path)
    }

    /// The pair-orbit partition of `g`: warm from the store when a valid
    /// artifact exists, otherwise computed and saved back.
    pub fn orbits(&self, g: &PortGraph) -> (PairOrbits, Provenance) {
        if let Some(orbits) = self.load_orbits(g) {
            return (orbits, Provenance::Warm);
        }
        let orbits = PairOrbits::compute(g);
        // a failed save leaves the cache cold but the result correct
        let _ = self.save_orbits(g, &orbits);
        (orbits, Provenance::Cold)
    }

    // -- timelines ---------------------------------------------------------

    fn timelines_path(&self, g: &PortGraph, program_key: &str, horizon: Round) -> PathBuf {
        let mut key = Vec::from(program_key.as_bytes());
        key.extend_from_slice(&horizon.to_le_bytes());
        self.root.join(format!("timelines-{:032x}-{:016x}.anrv", g.canonical_hash(), fnv64(&key)))
    }

    /// Load every recorded timeline of `(g, program_key, horizon)`, or
    /// `None` on any miss.  Each timeline is structurally re-validated by
    /// [`Timeline::from_segments`]; one bad entry rejects the whole file.
    pub fn load_timelines(
        &self,
        g: &PortGraph,
        program_key: &str,
        horizon: Round,
    ) -> Option<Vec<(NodeId, Timeline)>> {
        let bytes = fs::read(self.timelines_path(g, program_key, horizon)).ok()?;
        let mut d = unframe(Kind::Timelines, &bytes)?;
        if d.u128()? != g.canonical_hash() {
            return None;
        }
        let n = d.usize()?;
        if n != g.num_nodes() {
            return None;
        }
        if d.str()? != program_key || d.u128()? != horizon {
            return None;
        }
        let count = d.usize()?;
        let mut seen = vec![false; n];
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let start = d.usize()?;
            if start >= n || seen[start] {
                return None;
            }
            seen[start] = true;
            let nsegs = d.usize()?;
            let mut segs = Vec::with_capacity(nsegs);
            for _ in 0..nsegs {
                let node = d.usize()?;
                let s = d.u128()?;
                let end = d.u128()?;
                segs.push(TimelineSeg { node, start: s, end });
            }
            out.push((start, Timeline::from_segments(n, horizon, segs).ok()?));
        }
        d.exhausted().then_some(out)
    }

    /// Persist a set of recorded timelines.  Returns the artifact path.
    pub fn save_timelines(
        &self,
        g: &PortGraph,
        program_key: &str,
        horizon: Round,
        timelines: &[(NodeId, &Timeline)],
    ) -> io::Result<PathBuf> {
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.str(program_key);
        e.u128(horizon);
        e.usize(timelines.len());
        for (start, t) in timelines {
            e.usize(*start);
            e.usize(t.num_segments());
            for seg in t.segments() {
                e.usize(seg.node);
                e.u128(seg.start);
                e.u128(seg.end);
            }
        }
        let path = self.timelines_path(g, program_key, horizon);
        self.write_atomic(&path, &e.into_frame(Kind::Timelines))?;
        Ok(path)
    }

    /// Preload a sweep engine's trajectory cache from the store.  Returns
    /// the number of timelines installed; queries on those start nodes skip
    /// program execution entirely.
    pub fn warm_engine(&self, engine: &SweepEngine<'_>, program_key: &str) -> usize {
        let cache = engine.cache();
        let horizon = cache.horizon();
        let Some(timelines) = self.load_timelines(cache.graph(), program_key, horizon) else {
            return 0;
        };
        timelines.into_iter().filter(|(u, t)| cache.preload(*u, t.clone())).count()
    }

    /// Persist every timeline a sweep engine has recorded so far, merged
    /// with whatever the store already holds for the same key (so shard
    /// processes touching different classes accumulate one shared
    /// artifact).  The read-merge-write sequence runs under an advisory
    /// lock so concurrent shards cannot drop each other's contributions.
    /// Returns the number of timelines in the written artifact.
    pub fn persist_engine(&self, engine: &SweepEngine<'_>, program_key: &str) -> io::Result<usize> {
        let cache = engine.cache();
        let g = cache.graph();
        let horizon = cache.horizon();
        self.with_lock(&self.timelines_path(g, program_key, horizon), || {
            let mut merged: Vec<Option<Timeline>> = vec![None; g.num_nodes()];
            if let Some(existing) = self.load_timelines(g, program_key, horizon) {
                for (u, t) in existing {
                    merged[u] = Some(t);
                }
            }
            for (u, t) in cache.computed_timelines() {
                // freshly recorded timelines are authoritative (and
                // identical, programs being deterministic)
                merged[u] = Some(t.clone());
            }
            let owned: Vec<(NodeId, Timeline)> =
                merged.into_iter().enumerate().filter_map(|(u, t)| t.map(|t| (u, t))).collect();
            let borrowed: Vec<(NodeId, &Timeline)> = owned.iter().map(|(u, t)| (*u, t)).collect();
            self.save_timelines(g, program_key, horizon, &borrowed)?;
            Ok(borrowed.len())
        })
    }

    /// Prepare a store-backed planned sweep in one call: pair orbits warm
    /// or cold, trajectory timelines preloaded.  After running, call
    /// [`WarmStats::record_misses`] with the sweep's engine and
    /// [`Store::persist_engine`] to write newly recorded timelines back.
    pub fn prepare_sweep<'a>(
        &self,
        graph: &'a PortGraph,
        program: &'a dyn AgentProgram,
        program_key: &str,
        config: EngineConfig,
    ) -> (PlannedSweep<'a>, WarmStats) {
        let (orbits, orbit_prov) = self.orbits(graph);
        let planned = PlannedSweep::from_orbits(orbits, graph, program, config);
        let hits = self.warm_engine(planned.engine(), program_key);
        (planned, WarmStats { orbits: orbit_prov, timeline_hits: hits, timeline_misses: 0 })
    }

    // -- plan outcome tables -----------------------------------------------

    fn outcomes_key(&self, program_key: &str, plan: &SweepPlan) -> u64 {
        let mut key = Vec::from(program_key.as_bytes());
        key.extend_from_slice(&plan.horizon().to_le_bytes());
        key.extend_from_slice(&(plan.deltas().len() as u64).to_le_bytes());
        for &d in plan.deltas() {
            key.extend_from_slice(&d.to_le_bytes());
        }
        key.extend_from_slice(&(plan.orbits().num_pair_classes() as u64).to_le_bytes());
        fnv64(&key)
    }

    /// Filename stem shared by every artifact of one `(graph, program,
    /// plan)` sweep, so outcome tables and their shards sort together.
    pub(crate) fn plan_artifact_stem(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
    ) -> String {
        format!("{:032x}-{:016x}", g.canonical_hash(), self.outcomes_key(program_key, plan))
    }

    fn outcomes_path(&self, g: &PortGraph, program_key: &str, plan: &SweepPlan) -> PathBuf {
        self.root.join(format!("outcomes-{}.anrv", self.plan_artifact_stem(g, program_key, plan)))
    }

    /// Load the full representative-outcome table of `(g, program_key,
    /// plan)` — the result of a previous [`anonrv_plan::PlannedSweep::run`]
    /// — or `None` on any miss.  A hit makes the whole sweep (planning,
    /// recording *and* merging) unnecessary; wrap the table with
    /// [`anonrv_plan::PlannedOutcomes::from_table`].
    pub fn load_plan_outcomes(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
    ) -> Option<Vec<SimOutcome>> {
        let bytes = fs::read(self.outcomes_path(g, program_key, plan)).ok()?;
        let mut d = unframe(Kind::Outcomes, &bytes)?;
        decode_plan_identity(&mut d, g, program_key, plan)?;
        let len = d.usize()?;
        if len != plan.num_representative_queries() {
            return None;
        }
        let mut table = Vec::with_capacity(len);
        for _ in 0..len {
            table.push(decode_outcome(&mut d)?);
        }
        d.exhausted().then_some(table)
    }

    /// Persist an executed plan's representative-outcome table
    /// (class-major, δ-minor, as produced by
    /// [`anonrv_plan::PlannedSweep::run`]).  Returns the artifact path.
    pub fn save_plan_outcomes(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        table: &[SimOutcome],
    ) -> io::Result<PathBuf> {
        assert_eq!(
            table.len(),
            plan.num_representative_queries(),
            "outcome table does not match the plan"
        );
        let mut e = Enc::new();
        encode_plan_identity(&mut e, g, program_key, plan);
        e.usize(table.len());
        for o in table {
            encode_outcome(&mut e, o);
        }
        let path = self.outcomes_path(g, program_key, plan);
        self.write_atomic(&path, &e.into_frame(Kind::Outcomes))?;
        Ok(path)
    }
}

// -- shared payload pieces (also used by the shard files) -------------------

/// Encode the identity of a `(graph, program, plan)` triple: what a loader
/// verifies before trusting any cached outcome.
pub(crate) fn encode_plan_identity(
    e: &mut Enc,
    g: &PortGraph,
    program_key: &str,
    plan: &SweepPlan,
) {
    e.u128(g.canonical_hash());
    e.usize(g.num_nodes());
    e.str(program_key);
    e.u128(plan.horizon());
    e.usize(plan.deltas().len());
    for &d in plan.deltas() {
        e.u128(d);
    }
    e.usize(plan.orbits().num_pair_classes());
}

/// Verify an encoded plan identity against the query; `None` on mismatch.
pub(crate) fn decode_plan_identity(
    d: &mut Dec<'_>,
    g: &PortGraph,
    program_key: &str,
    plan: &SweepPlan,
) -> Option<()> {
    if d.u128()? != g.canonical_hash() || d.usize()? != g.num_nodes() {
        return None;
    }
    if d.str()? != program_key || d.u128()? != plan.horizon() {
        return None;
    }
    let ndeltas = d.usize()?;
    if ndeltas != plan.deltas().len() {
        return None;
    }
    for &delta in plan.deltas() {
        if d.u128()? != delta {
            return None;
        }
    }
    (d.usize()? == plan.orbits().num_pair_classes()).then_some(())
}

/// Encode one [`SimOutcome`] exactly (every field, `u128`s included).
pub(crate) fn encode_outcome(e: &mut Enc, o: &SimOutcome) {
    let flags = u8::from(o.meeting.is_some())
        | (u8::from(o.earlier_terminated) << 1)
        | (u8::from(o.later_terminated) << 2);
    e.u8(flags);
    if let Some(m) = &o.meeting {
        e.u128(m.global_round);
        e.u128(m.later_round);
        e.usize(m.node);
    }
    e.u64(o.earlier_moves);
    e.u64(o.later_moves);
    e.u128(o.horizon);
}

/// Decode one [`SimOutcome`]; `None` on malformed input.
pub(crate) fn decode_outcome(d: &mut Dec<'_>) -> Option<SimOutcome> {
    let flags = d.u8()?;
    if flags & !0b111 != 0 {
        return None;
    }
    let meeting = if flags & 1 != 0 {
        Some(Meeting { global_round: d.u128()?, later_round: d.u128()?, node: d.usize()? })
    } else {
        None
    };
    Some(SimOutcome {
        meeting,
        earlier_moves: d.u64()?,
        later_moves: d.u64()?,
        earlier_terminated: flags & 0b10 != 0,
        later_terminated: flags & 0b100 != 0,
        horizon: d.u128()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{TempDir, Walker};
    use anonrv_graph::generators::{oriented_ring, oriented_torus};
    use anonrv_sim::Stic;

    fn store_in(dir: &TempDir) -> Store {
        Store::open(&dir.0).unwrap()
    }

    #[test]
    fn orbits_round_trip_warm_after_cold() {
        let dir = TempDir::new("orbits");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let (cold, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Cold);
        let (warm, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Warm);
        assert_eq!(warm, cold);
        // a different graph never sees the artifact
        let other = oriented_ring(12).unwrap();
        assert!(store.load_orbits(&other).is_none());
    }

    #[test]
    fn corrupted_truncated_or_stale_orbit_files_fall_back_to_recompute() {
        let dir = TempDir::new("orbit-corruption");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        let path = store.save_orbits(&g, &PairOrbits::compute(&g)).unwrap();
        let good = fs::read(&path).unwrap();
        assert!(store.load_orbits(&g).is_some());

        // flip one payload byte: checksum gate
        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        fs::write(&path, &corrupt).unwrap();
        assert!(store.load_orbits(&g).is_none());

        // truncate: length gate
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load_orbits(&g).is_none());

        // bump the format version: version gate
        let mut stale = good.clone();
        stale[8] = stale[8].wrapping_add(1);
        fs::write(&path, &stale).unwrap();
        assert!(store.load_orbits(&g).is_none());

        // in every case `orbits` recovers by recomputing and rewriting
        let (recovered, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Cold);
        assert_eq!(recovered, PairOrbits::compute(&g));
        assert_eq!(store.orbits(&g).1, Provenance::Warm);
    }

    #[test]
    fn forged_but_well_framed_permutations_are_rejected_by_validation() {
        let dir = TempDir::new("orbit-forgery");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        // hand-craft a frame whose payload passes every codec gate but whose
        // permutations are not automorphisms of g
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.usize(2);
        for v in 0..g.num_nodes() {
            e.u64(v as u64); // identity
        }
        for v in 0..g.num_nodes() {
            e.u64(((v + 1) % g.num_nodes()) as u64); // index shift: not an automorphism
        }
        let path = dir.0.join(format!("orbits-{:032x}.anrv", g.canonical_hash()));
        fs::write(&path, e.into_frame(Kind::Orbits)).unwrap();
        assert!(store.load_orbits(&g).is_none());
    }

    #[test]
    fn timelines_round_trip_and_warm_engines_answer_bit_identically() {
        let dir = TempDir::new("timelines");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let key = "test-walker-5eed";

        // cold engine: run a few queries, then persist what was recorded
        let cold = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        let queries: Vec<Stic> =
            vec![Stic::new(0, 5, 0), Stic::new(0, 5, 3), Stic::new(7, 2, 1), Stic::new(11, 3, 4)];
        let cold_outcomes: Vec<SimOutcome> = queries.iter().map(|s| cold.simulate(s)).collect();
        let persisted = store.persist_engine(&cold, key).unwrap();
        assert_eq!(persisted, cold.cache().computed());
        assert!(persisted > 0);

        // warm engine: every persisted timeline preloads, outcomes match
        let warm = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        let hits = store.warm_engine(&warm, key);
        assert_eq!(hits, persisted);
        let before = warm.cache().computed();
        let warm_outcomes: Vec<SimOutcome> = queries.iter().map(|s| warm.simulate(s)).collect();
        assert_eq!(warm_outcomes, cold_outcomes);
        assert_eq!(warm.cache().computed(), before, "warm queries recorded nothing new");

        // a different program key or horizon is a miss
        let other = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        assert_eq!(store.warm_engine(&other, "different-key"), 0);
        let other = SweepEngine::new(&g, &program, EngineConfig::batch(65));
        assert_eq!(store.warm_engine(&other, key), 0);

        // persisting again unions with what is on disk (here: no change)
        let repersisted = store.persist_engine(&warm, key).unwrap();
        assert_eq!(repersisted, persisted);
    }

    #[test]
    fn concurrent_persists_union_instead_of_last_writer_wins() {
        let dir = TempDir::new("concurrent-persist");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 3 };
        let key = "test-walker-3";
        // two "shard processes" record disjoint start nodes ...
        let a = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        let b = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        a.simulate(&Stic::new(0, 1, 0));
        b.simulate(&Stic::new(5, 6, 0));
        // ... and persist concurrently: the lock serialises the merges, so
        // both contributions survive in the shared artifact
        std::thread::scope(|scope| {
            let (store_a, store_b) = (&store, &store);
            let ta = scope.spawn(move || store_a.persist_engine(&a, key).unwrap());
            let tb = scope.spawn(move || store_b.persist_engine(&b, key).unwrap());
            ta.join().unwrap();
            tb.join().unwrap();
        });
        let persisted = store.load_timelines(&g, key, 64).expect("artifact readable");
        let mut nodes: Vec<_> = persisted.iter().map(|(u, _)| *u).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 5, 6], "both shards' timelines must survive");
        // the lock file is cleaned up after both persists
        let leftovers: Vec<_> = fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".lock"))
            .collect();
        assert!(leftovers.is_empty(), "stale lock files: {leftovers:?}");
    }

    #[test]
    fn plan_outcome_tables_round_trip_and_miss_on_plan_changes() {
        let dir = TempDir::new("outcomes");
        let store = store_in(&dir);
        let g = oriented_ring(8).unwrap();
        let program = Walker { seed: 7 };
        let key = "test-walker-7";
        let (planned, _) = store.prepare_sweep(&g, &program, key, EngineConfig::batch(100));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 5], 100);
        let outcomes = planned.run(&plan);
        store.save_plan_outcomes(&g, key, &plan, outcomes.table()).unwrap();
        assert_eq!(store.load_plan_outcomes(&g, key, &plan).as_deref(), Some(outcomes.table()));
        // a different delta grid, horizon or program key all miss
        let other = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 6], 100);
        assert!(store.load_plan_outcomes(&g, key, &other).is_none());
        let other = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 5], 99);
        assert!(store.load_plan_outcomes(&g, key, &other).is_none());
        assert!(store.load_plan_outcomes(&g, "other-key", &plan).is_none());
    }

    #[test]
    fn prepare_sweep_reports_warm_stats() {
        let dir = TempDir::new("prepare");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        let program = Walker { seed: 42 };
        let key = "test-walker-42";

        let (cold, mut stats) = store.prepare_sweep(&g, &program, key, EngineConfig::batch(64));
        assert_eq!(stats.orbits, Provenance::Cold);
        assert_eq!(stats.timeline_hits, 0);
        let plan = SweepPlan::from_orbits(cold.orbits().clone(), vec![0, 1, 2], 64);
        let cold_outcomes = cold.run(&plan);
        stats.record_misses(cold.engine());
        assert_eq!(stats.timeline_misses, cold.engine().cache().computed());
        store.persist_engine(cold.engine(), key).unwrap();

        let (warm, mut stats) = store.prepare_sweep(&g, &program, key, EngineConfig::batch(64));
        assert_eq!(stats.orbits, Provenance::Warm);
        assert_eq!(stats.timeline_hits, cold.engine().cache().computed());
        let warm_outcomes = warm.run(&plan);
        stats.record_misses(warm.engine());
        assert_eq!(stats.timeline_misses, 0, "a warm sweep records no new timeline");
        assert_eq!(warm_outcomes.table(), cold_outcomes.table());
    }

    #[test]
    fn outcome_codec_round_trips_every_field_shape() {
        let samples = [
            SimOutcome {
                meeting: Some(Meeting { global_round: u128::MAX - 3, later_round: 7, node: 11 }),
                earlier_moves: 5,
                later_moves: u64::MAX,
                earlier_terminated: true,
                later_terminated: false,
                horizon: u128::MAX,
            },
            SimOutcome {
                meeting: None,
                earlier_moves: 0,
                later_moves: 0,
                earlier_terminated: false,
                later_terminated: true,
                horizon: 64,
            },
        ];
        for o in samples {
            let mut e = Enc::new();
            encode_outcome(&mut e, &o);
            let bytes = e.into_frame(Kind::Outcomes);
            let mut d = unframe(Kind::Outcomes, &bytes).unwrap();
            assert_eq!(decode_outcome(&mut d), Some(o));
            assert!(d.exhausted());
        }
    }
}
