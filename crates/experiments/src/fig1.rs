//! EXP-FIG1 — reproduction of Figure 1: the tree `Q_h` and the graph `Q̂_h`
//! (Section 4 of the paper), with structural verification.
//!
//! The paper's figure shows `Q_2` (left) and the extra leaf edges of `Q̂_2`
//! (right).  The experiment regenerates both objects for a range of heights,
//! verifies every structural property the construction promises, and renders
//! the `h = 2` instance as ASCII and DOT.

use anonrv_graph::generators::{qh_hat, qh_tree, z_set, QhGraph};
use anonrv_graph::render::{figure1_text, to_dot_cardinal};
use anonrv_graph::symmetry::OrbitPartition;

use crate::report::Table;

/// Configuration of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Heights `h` to generate and verify.
    pub heights: Vec<usize>,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config { heights: vec![2, 3] }
    }
}

impl Fig1Config {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        Fig1Config { heights: vec![2, 3, 4, 5, 6] }
    }
}

/// Structural facts of one generated `Q_h` / `Q̂_h` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig1Row {
    /// Height `h`.
    pub h: usize,
    /// Number of nodes (shared by `Q_h` and `Q̂_h`).
    pub nodes: usize,
    /// Number of edges of the tree `Q_h`.
    pub tree_edges: usize,
    /// Number of edges of `Q̂_h`.
    pub hat_edges: usize,
    /// Number of leaves of the tree (`4 · 3^(h−1)`).
    pub leaves: usize,
    /// Whether `Q̂_h` is 4-regular.
    pub hat_regular: bool,
    /// Whether every edge of `Q̂_h` carries opposite cardinal ports
    /// (`N`–`S` or `E`–`W`).
    pub opposite_ports: bool,
    /// Whether all nodes of `Q̂_h` are pairwise symmetric (single orbit).
    pub fully_symmetric: bool,
    /// Size of the Theorem 4.1 set `Z` for the largest admissible `k`
    /// (`2k ≤ h/2`), when one exists.
    pub z_size: Option<usize>,
}

/// Check that every edge of `Q̂_h` has ports `{N, S}` or `{E, W}` at its two
/// extremities (ports are 0=N, 1=E, 2=S, 3=W).
pub fn edges_have_opposite_cardinal_ports(q: &QhGraph) -> bool {
    q.graph.edges().all(|(_, pu, _, pv)| (pu + 2) % 4 == pv)
}

/// Verify one height and produce its row.
pub fn verify_height(h: usize) -> Fig1Row {
    let tree = qh_tree(h).expect("Q_h generation");
    let hat = qh_hat(h).expect("Q̂_h generation");
    assert_eq!(tree.graph.num_nodes(), hat.graph.num_nodes(), "Q_h and Q̂_h share nodes");
    let partition = OrbitPartition::compute(&hat.graph);
    let max_k = (h / 4).max(if h >= 4 { 1 } else { 0 });
    let z_size = if max_k >= 1 { z_set(&hat, max_k).ok().map(|z| z.len()) } else { None };
    Fig1Row {
        h,
        nodes: hat.graph.num_nodes(),
        tree_edges: tree.graph.num_edges(),
        hat_edges: hat.graph.num_edges(),
        leaves: tree.num_leaves(),
        hat_regular: hat.graph.is_regular() && hat.graph.max_degree() == 4,
        opposite_ports: edges_have_opposite_cardinal_ports(&hat),
        fully_symmetric: partition.is_fully_symmetric(),
        z_size,
    }
}

/// Expected node count of `Q_h`: `1 + 4·(3^h − 1)/2`.
pub fn expected_nodes(h: usize) -> usize {
    1 + 4 * (3usize.pow(h as u32) - 1) / 2
}

/// Expected leaf count of `Q_h`: `4 · 3^(h−1)`.
pub fn expected_leaves(h: usize) -> usize {
    4 * 3usize.pow(h as u32 - 1)
}

/// Run the experiment: one table row per height.
pub fn run(config: &Fig1Config) -> Table {
    let mut table = Table::new(
        "EXP-FIG1",
        "Q_h / Q̂_h construction (Figure 1, Section 4)",
        &[
            "h",
            "nodes",
            "tree edges",
            "hat edges",
            "leaves",
            "4-regular",
            "opposite ports",
            "fully symmetric",
            "|Z| (max k)",
        ],
    );
    for &h in &config.heights {
        let row = verify_height(h);
        assert_eq!(row.nodes, expected_nodes(h), "node count formula (h = {h})");
        assert_eq!(row.leaves, expected_leaves(h), "leaf count formula (h = {h})");
        table.push_row([
            row.h.to_string(),
            row.nodes.to_string(),
            row.tree_edges.to_string(),
            row.hat_edges.to_string(),
            row.leaves.to_string(),
            row.hat_regular.to_string(),
            row.opposite_ports.to_string(),
            row.fully_symmetric.to_string(),
            row.z_size.map(|z| z.to_string()).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.push_note(
        "Paper: Q_h has 1 + 4(3^h − 1)/2 nodes and 4·3^(h−1) leaves; Q̂_h is 4-regular, every \
         edge has ports N–S or E–W, and all of its nodes are pairwise symmetric.",
    );
    table
}

/// The ASCII rendering of the `h = 2` instance (the figure itself).
pub fn figure1_ascii() -> String {
    let hat = qh_hat(2).expect("Q̂_2 generation");
    figure1_text(&hat)
}

/// The DOT rendering of `Q̂_2` with cardinal port labels.
pub fn figure1_dot() -> String {
    let hat = qh_hat(2).expect("Q̂_2 generation");
    to_dot_cardinal(&hat.graph, "Q_hat_2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q2_matches_the_paper_figure() {
        let row = verify_height(2);
        assert_eq!(row.nodes, 17); // 1 + 4 + 12
        assert_eq!(row.leaves, 12);
        assert_eq!(row.tree_edges, 16);
        // Q̂_2 is 4-regular on 17 nodes: 34 edges
        assert_eq!(row.hat_edges, 34);
        assert!(row.hat_regular);
        assert!(row.opposite_ports);
        assert!(row.fully_symmetric);
    }

    #[test]
    fn the_experiment_covers_every_requested_height() {
        let table = run(&Fig1Config { heights: vec![2, 3] });
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.column_values("fully symmetric"), vec!["true", "true"]);
    }

    #[test]
    fn renders_are_nonempty_and_mention_the_root() {
        assert!(!figure1_ascii().is_empty());
        let dot = figure1_dot();
        assert!(dot.starts_with("graph") || dot.contains("graph"));
    }

    #[test]
    fn node_and_leaf_formulas() {
        assert_eq!(expected_nodes(1), 5);
        assert_eq!(expected_nodes(2), 17);
        assert_eq!(expected_nodes(3), 53);
        assert_eq!(expected_leaves(1), 4);
        assert_eq!(expected_leaves(3), 36);
    }
}
