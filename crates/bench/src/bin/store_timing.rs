//! Emit `BENCH_store.json`: wall-clock timings of the persistent plan cache
//! (`anonrv-store`) on the exhaustive sweep workload — **all** `(u, v)`
//! ordered pairs × δ ∈ {0..4} on `oriented_torus(64, 64)` (83 886 080
//! member STICs, horizon 256) — in four temperatures, all driven through
//! the same [`SweepSession`] pipeline the CLI and the experiments use:
//!
//! * **cold** — empty cache: plan (automorphism group + pair orbits), record
//!   every trajectory, merge every representative, persist everything;
//! * **warm timelines** — orbits and trajectory timelines load from disk
//!   (planning and program execution skipped), only the representative
//!   merges run;
//! * **warm outcomes (exact hit)** — a table recorded at the requested
//!   horizon loads from disk; planning, trajectory recording *and* merging
//!   are all skipped;
//! * **warm prefix hit** — the cache holds only a recording at 2× the
//!   requested horizon; the table is served by prefix truncation (the
//!   entries the prefix cannot determine re-merge through warm timelines —
//!   zero program executions).
//!
//! The agent is the [`ExpensiveWalker`]: each action pays a deterministic
//! hash-mix burn, standing in for an algorithm with real per-round
//! bookkeeping.  Recording therefore dominates the cold run — which is
//! exactly the work the warm paths skip, so the cold/warm ratios measure
//! the gap a real workload would see rather than engine overhead.
//!
//! A 2-shard execute + merge is also checked for bit-identity against the
//! unsharded table (on a smaller torus, to keep the guard cheap) before
//! anything is timed, so a broken merge fails the benchmark loudly.
//!
//! Two telemetry-derived sections ride along (see `anonrv-obs`):
//!
//! * **`phase_seconds`** — the seeding cold run executes under a
//!   metrics-only pipeline, and the `span.session.*.us` histograms break
//!   its wall time into plan / probe / execute / record / persist;
//! * **`telemetry_overhead_pct`** — the warm-outcomes measurement is
//!   repeated with the metrics pipeline installed; the delta against the
//!   plain (telemetry-off) median bounds the cost of the instrumentation,
//!   and the zero-cost contract says it stays within noise.
//!
//! Every *timed* number except that overhead row runs with telemetry off,
//! so BENCH_store.json's temperatures keep meaning what they always did.
//!
//! Usage: `cargo run --release -p anonrv-bench --bin store_timing
//! [output.json]` (default output: `BENCH_store.json`).

use std::time::Instant;

use anonrv_bench::ExpensiveWalker;
use anonrv_graph::generators::oriented_torus;
use anonrv_plan::{PlannedSweep, SweepPlan};
use anonrv_sim::{EngineConfig, Round};
use anonrv_store::{OutcomeProvenance, ShardSpec, Store, SweepSession};

const HORIZON: Round = 256;
const DELTAS: u32 = 5;
/// Hash-mix iterations per agent action: large enough that trajectory
/// recording dominates a cold run, small enough for CI.
const COST: u32 = 2048;

/// Median wall time of `runs` executions, in seconds.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_store.json".to_string());
    let dir = std::env::temp_dir().join(format!("anonrv-store-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let torus = oriented_torus(64, 64).unwrap();
    let n = torus.num_nodes();
    let program = ExpensiveWalker { seed: 0x5EED, cost: COST };
    let program_key = &program.program_key();
    let deltas: Vec<Round> = (0..DELTAS as Round).collect();

    // one full pipeline at `horizon` against `store`: session construction
    // (orbit probe), outcome probe, execution of whatever the probes left,
    // persistence — exactly what one `anonrv sweep` invocation does
    let pipeline = |store: &Store, horizon: Round| -> (usize, OutcomeProvenance) {
        let mut session = SweepSession::new(
            Some(store),
            &torus,
            &program,
            program_key,
            EngineConfig::batch(horizon),
        );
        let plan = SweepPlan::from_orbits(session.orbits().clone(), deltas.clone(), horizon);
        let (outcomes, provenance) = session.run_plan(&plan).expect("session pipeline");
        (outcomes.met_total(), provenance)
    };

    // correctness guard before anything is timed: 2-shard merge must be
    // bit-identical to the unsharded run (kept on a smaller torus so the
    // guard costs seconds, not the full workload thrice)
    {
        let small = oriented_torus(16, 16).unwrap();
        let guard_sweep = PlannedSweep::new(&small, &program, EngineConfig::batch(HORIZON));
        let guard_plan =
            SweepPlan::from_orbits(guard_sweep.orbits().clone(), deltas.clone(), HORIZON);
        let guard_reference = guard_sweep.run(&guard_plan);
        let shard_store = Store::open(dir.join("shard-check")).expect("open shard store");
        for index in 0..2 {
            let mut worker = SweepSession::new(
                Some(&shard_store),
                &small,
                &program,
                program_key,
                EngineConfig::batch(HORIZON),
            );
            worker.run_shard(&guard_plan, ShardSpec::new(2, index).unwrap()).expect("shard slice");
        }
        let mut merger = SweepSession::new(
            Some(&shard_store),
            &small,
            &program,
            program_key,
            EngineConfig::batch(HORIZON),
        );
        let merged = merger.merge_shards(&guard_plan, 2).expect("merge 2 shards");
        assert_eq!(
            merged.table(),
            guard_reference.table(),
            "2-shard merge diverged from the unsharded planned sweep"
        );
    }

    // cold: a fresh directory per iteration
    let mut cold_iter = 0u32;
    let cold_s = time_median(3, || {
        cold_iter += 1;
        let fresh = dir.join(format!("cold-{cold_iter}"));
        let store = Store::open(&fresh).expect("open cold store");
        let (met, provenance) = pipeline(&store, HORIZON);
        assert_eq!(provenance, OutcomeProvenance::Cold);
        std::fs::remove_dir_all(&fresh).ok();
        met
    });

    // seed one persistent directory for the warm measurements — under a
    // metrics-only telemetry pipeline, so the session's spans break the
    // cold pipeline's wall time into phases (µs histograms; see anonrv-obs)
    let warm_dir = dir.join("warm");
    let store = Store::open(&warm_dir).expect("open warm store");
    let (met_cold, phases) = {
        let guard = anonrv_obs::install(anonrv_obs::ObsConfig::metrics_only())
            .expect("install telemetry pipeline");
        let (met, provenance) = pipeline(&store, HORIZON);
        assert_eq!(provenance, OutcomeProvenance::Cold);
        assert!(met > 0, "the workload found no meetings");
        let snap = anonrv_obs::snapshot();
        let phase_s = |phase: &str| {
            snap.histogram(&format!("span.session.{phase}.us"))
                .map(|h| h.sum as f64 / 1e6)
                .unwrap_or(0.0)
        };
        let phases: Vec<(&str, f64)> = ["plan", "probe", "execute", "record", "persist"]
            .iter()
            .map(|&p| (p, phase_s(p)))
            .collect();
        drop(guard); // telemetry back off before anything below is timed
        (met, phases)
    };

    // warm outcomes (exact hit): everything loads, nothing executes
    let warm_outcomes_s = time_median(15, || {
        let (met, provenance) = pipeline(&store, HORIZON);
        assert_eq!(provenance, OutcomeProvenance::WarmExact);
        assert_eq!(met, met_cold);
        met
    });

    // the same measurement with the metrics pipeline installed: the delta
    // against the plain median above bounds the instrumentation cost (the
    // disabled-path cost — one relaxed atomic load per site — is below it)
    let warm_outcomes_obs_s = {
        let _guard = anonrv_obs::install(anonrv_obs::ObsConfig::metrics_only())
            .expect("install telemetry pipeline");
        time_median(15, || {
            let (met, provenance) = pipeline(&store, HORIZON);
            assert_eq!(provenance, OutcomeProvenance::WarmExact);
            assert_eq!(met, met_cold);
            met
        })
    };
    let telemetry_overhead_pct = (warm_outcomes_obs_s / warm_outcomes_s - 1.0) * 100.0;

    // warm timelines: planning and recording load, the merges re-run (the
    // store primitives under the session's cold path, without persistence)
    let warm_timelines_s = time_median(5, || {
        let (orbits, prov) = store.orbits(&torus);
        assert!(prov.is_warm(), "orbit artifact went missing");
        let planned =
            PlannedSweep::from_orbits(orbits, &torus, &program, EngineConfig::batch(HORIZON));
        let warmed = store.warm_engine(planned.engine(), program_key);
        assert_eq!(warmed.installed, n, "every timeline must preload");
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), deltas.clone(), HORIZON);
        let outcomes = planned.run(&plan);
        assert_eq!(outcomes.met_total(), met_cold);
        outcomes.met_total()
    });

    // warm prefix hit: the cache holds only a 2×-horizon recording; the
    // requested horizon is served by prefix truncation + warm re-merges
    let prefix_dir = dir.join("prefix");
    let prefix_store = Store::open(&prefix_dir).expect("open prefix store");
    let (met_long, provenance) = pipeline(&prefix_store, 2 * HORIZON);
    assert_eq!(provenance, OutcomeProvenance::Cold);
    assert!(met_long > 0, "the seeding sweep found no meetings");
    let warm_prefix_s = time_median(5, || {
        let (met, provenance) = pipeline(&prefix_store, HORIZON);
        assert!(
            matches!(provenance, OutcomeProvenance::WarmPrefix { recorded, .. } if recorded == 2 * HORIZON),
            "expected a prefix hit, got {provenance:?}"
        );
        assert_eq!(met, met_cold, "prefix-served table diverged");
        met
    });

    let num_stics = n * n * DELTAS as usize;
    let phase_json = phases
        .iter()
        .map(|(name, secs)| format!("\"{name}\": {secs:.6}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"instance\": \"oriented_torus(64, 64)\",\n  \
         \"program\": \"expensive-walker (cost {COST} hash mixes per action)\",\n  \
         \"workload\": \"all (u, v) pairs x delta in 0..{DELTAS}, horizon {HORIZON}\",\n  \
         \"stics\": {num_stics},\n  \
         \"meetings\": {met_cold},\n  \
         \"shard_merge_check\": \"2 shards, bit-identical\",\n  \
         \"prefix_check\": \"horizon {HORIZON} served from a horizon-{} recording, bit-identical\",\n  \
         \"cold_seconds\": {cold_s:.6},\n  \
         \"phase_seconds\": {{{phase_json}}},\n  \
         \"warm_timelines_seconds\": {warm_timelines_s:.6},\n  \
         \"warm_outcomes_seconds\": {warm_outcomes_s:.6},\n  \
         \"warm_outcomes_with_metrics_seconds\": {warm_outcomes_obs_s:.6},\n  \
         \"telemetry_overhead_pct\": {telemetry_overhead_pct:.2},\n  \
         \"warm_prefix_seconds\": {warm_prefix_s:.6},\n  \
         \"warm_timelines_speedup\": {:.1},\n  \
         \"warm_outcomes_speedup\": {:.1},\n  \
         \"warm_prefix_speedup\": {:.1}\n}}\n",
        2 * HORIZON,
        cold_s / warm_timelines_s,
        cold_s / warm_outcomes_s,
        cold_s / warm_prefix_s,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
    std::fs::remove_dir_all(&dir).ok();
}
