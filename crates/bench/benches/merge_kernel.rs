//! Perf-tracking bench for the **timeline-merge kernels** — the inner loop
//! every warm sweep spends its time in, measured in the three temperatures
//! the store serves:
//!
//! * **cold merge** — one sort-merge of two recorded timelines from round
//!   zero ([`merge_timelines`]);
//! * **warm-timeline delta sweep** — a pair's whole δ-grid resolved in one
//!   shared occupancy pass with reusable scratch
//!   ([`merge_timelines_deltas_with`]), what `PlannedSweep::run` and
//!   `serve_prefix` fan rayon out over;
//! * **prefix extend** — a horizon-`h` outcome resumed at `H = 2h` instead
//!   of restarted ([`merge_timelines_extend`]), the warm-extend path of
//!   `SweepSession::run_plan`.
//!
//! Timelines are recorded once outside the timing loops (the trajectory
//! cache's job); the rows time merging only, which is exactly the cost a
//! warm store pays per representative query.
//!
//! [`merge_timelines`]: anonrv_sim::merge_timelines
//! [`merge_timelines_deltas_with`]: anonrv_sim::merge_timelines_deltas_with
//! [`merge_timelines_extend`]: anonrv_sim::merge_timelines_extend

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_bench::SweepWalker;
use anonrv_graph::generators::oriented_torus;
use anonrv_sim::{
    merge_timelines, merge_timelines_deltas_with, merge_timelines_extend, MergeScratch, Round,
    Stic, Timeline,
};

const HORIZON: Round = 4096;
const DELTAS: u32 = 8;

fn bench_merge_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_kernel");
    let torus = oriented_torus(16, 16).unwrap();
    let program = SweepWalker { seed: 0x5EED };

    // two long recordings of a non-meeting-prone pair: the merge has to
    // sweep the whole horizon rather than exit on an early meeting
    let earlier = Timeline::record(&torus, &program, 0, HORIZON);
    let later = Timeline::record(&torus, &program, 137, HORIZON);
    let stic = Stic::new(0, 137, 3);
    let deltas: Vec<Round> = (0..DELTAS as Round).collect();

    group.bench_function("cold merge (one pair, horizon 4096)", |b| {
        b.iter(|| merge_timelines(black_box(&earlier), black_box(&later), &stic, HORIZON))
    });

    let mut scratch = MergeScratch::new();
    group.bench_function("warm-timeline delta sweep (8 deltas, shared pass)", |b| {
        b.iter(|| {
            merge_timelines_deltas_with(
                &mut scratch,
                black_box(&earlier),
                black_box(&later),
                &deltas,
                HORIZON,
            )
        })
    });

    let prior = merge_timelines(&earlier, &later, &stic, HORIZON / 2);
    group.bench_function("prefix extend (resume 2048 -> 4096)", |b| {
        b.iter(|| {
            merge_timelines_extend(black_box(&earlier), black_box(&later), &stic, &prior, HORIZON)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merge_kernel);
criterion_main!(benches);
