//! # anonrv
//!
//! Umbrella crate for the reproduction of *Using Time to Break Symmetry:
//! Universal Deterministic Anonymous Rendezvous* (Pelc & Yadav, SPAA 2019).
//!
//! The implementation lives in the focused sub-crates; this crate re-exports
//! them under one roof so that downstream users (and the workspace-level
//! integration tests and examples) need a single dependency:
//!
//! * [`graph`] ([`anonrv_graph`]) — port-labelled graph substrate, the
//!   view-equivalence partition, `Shrink`, and the flat product-space
//!   [`anonrv_graph::pairspace`] engine;
//! * [`uxs`] ([`anonrv_uxs`]) — universal exploration sequences;
//! * [`sim`] ([`anonrv_sim`]) — the two-agent round simulator (streaming and
//!   lockstep engines);
//! * [`core`] ([`anonrv_core`]) — the paper's algorithms and the feasibility
//!   characterisation;
//! * [`plan`] ([`anonrv_plan`]) — symmetry-reduced sweep planning: pair
//!   orbits, representative queries and broadcastable outcomes;
//! * [`experiments`] ([`anonrv_experiments`]) — the table/figure harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonrv_core as core;
pub use anonrv_experiments as experiments;
pub use anonrv_graph as graph;
pub use anonrv_plan as plan;
pub use anonrv_sim as sim;
pub use anonrv_uxs as uxs;
