//! Cross-crate integration tests for the Section 4 lower bound (Theorem 4.1).

use anonrv_core::lower_bound::{
    check_schedule_explicit, check_schedule_symbolic, ObliviousSchedule, ObliviousStep,
};
use anonrv_experiments::lower_bound_exp::{self, LowerBoundConfig};
use anonrv_graph::distance::distance;
use anonrv_graph::generators::{qh_hat, qh_tree, z_set, Cardinal};
use anonrv_graph::symmetry::OrbitPartition;

#[test]
fn the_lower_bound_experiment_is_consistent_for_k_up_to_six() {
    let config = LowerBoundConfig { ks: vec![1, 2, 3, 4, 5, 6], ..LowerBoundConfig::default() };
    let records = lower_bound_exp::collect(&config);
    assert_eq!(records.len(), 6);
    for r in &records {
        assert!(r.consistent_with_theorem(), "{r:?}");
    }
    // exponential growth of the worst meeting time
    let worst: Vec<u128> = records.iter().map(|r| r.meeting_worst_time.unwrap()).collect();
    for pair in worst.windows(2) {
        assert!(pair[1] > pair[0]);
    }
    assert!(worst[5] >= 32, "k = 6 threshold is 32");
}

#[test]
fn q_hat_structure_matches_the_paper() {
    for h in [2usize, 3, 4] {
        let tree = qh_tree(h).unwrap();
        let hat = qh_hat(h).unwrap();
        let n = 1 + 4 * (3usize.pow(h as u32) - 1) / 2;
        assert_eq!(tree.graph.num_nodes(), n);
        assert_eq!(hat.graph.num_nodes(), n);
        assert_eq!(tree.num_leaves(), 4 * 3usize.pow(h as u32 - 1));
        assert!(hat.graph.is_regular());
        assert_eq!(hat.graph.max_degree(), 4);
        assert!(hat.graph.is_connected());
        assert!(OrbitPartition::compute(&hat.graph).is_fully_symmetric());
        // every edge carries opposite cardinal ports
        assert!(hat.graph.edges().all(|(_, pu, _, pv)| (pu + 2) % 4 == pv));
    }
}

#[test]
fn z_set_nodes_are_at_distance_d_from_the_root_and_pairwise_distinct() {
    for k in [1usize, 2] {
        let q = qh_hat(4 * k).unwrap();
        let z = z_set(&q, k).unwrap();
        assert_eq!(z.len(), 1 << k);
        let mut sorted = z.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), z.len(), "Z nodes must be distinct");
        for &v in &z {
            assert_eq!(distance(&q.graph, q.root, v), 2 * k, "k = {k}, v = {v}");
        }
    }
}

#[test]
fn oblivious_schedules_round_trip_between_letters_and_steps() {
    let schedule = ObliviousSchedule::meeting_sweep(2);
    let word: String = schedule.steps.iter().map(|s| s.letter()).collect();
    let parsed = ObliviousSchedule::parse(&word).unwrap();
    assert_eq!(parsed, schedule);
    assert_eq!(ObliviousStep::Stay.letter(), '.');
    assert_eq!(ObliviousStep::Go(Cardinal::W).letter(), 'W');
}

#[test]
fn schedules_with_stays_behave_identically_in_both_checkers() {
    let k = 1usize;
    let q = qh_hat(4 * k).unwrap();
    for word in ["..NNSS", "N.N.SS", ".E.W.N", "NNNN..", "NN..EE"] {
        let schedule = ObliviousSchedule::parse(word).unwrap();
        let explicit = check_schedule_explicit(&q, k, &schedule);
        let symbolic = check_schedule_symbolic(k, &schedule);
        assert_eq!(explicit.times, symbolic.times, "word {word}");
    }
}

#[test]
fn no_schedule_of_length_below_the_threshold_meets_the_whole_family() {
    // Exhaustive over *all* words of length < 2^(k-1) for k = 3 (threshold 4)
    // over the alphabet {stay, N, E, S, W}: 1 + 5 + 25 + 125 = 156 schedules.
    // Theorem 4.1 says none of them can meet every STIC of the family.
    let k = 3usize;
    let threshold = 1usize << (k - 1);
    let alphabet = [
        ObliviousStep::Stay,
        ObliviousStep::Go(Cardinal::N),
        ObliviousStep::Go(Cardinal::E),
        ObliviousStep::Go(Cardinal::S),
        ObliviousStep::Go(Cardinal::W),
    ];
    let mut checked = 0usize;
    for len in 0..threshold {
        for code in 0..5usize.pow(len as u32) {
            let mut word = Vec::with_capacity(len);
            let mut rest = code;
            for _ in 0..len {
                word.push(alphabet[rest % 5]);
                rest /= 5;
            }
            let schedule = ObliviousSchedule::new(word);
            assert!(
                !check_schedule_symbolic(k, &schedule).met_all(),
                "a schedule of length {len} < {threshold} met the whole family: {schedule:?}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 156);
}
